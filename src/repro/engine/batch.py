"""Batch all-sources engine: vectorized schedule generation and validation.

The theorem sweeps (E09, E12, E20, …) and the certificate exporter all ask
the same *many-scenarios* question: "run ``Broadcast_k`` from every source
and check the result".  Doing that one source at a time repeats work twice
over — each schedule is rebuilt call-by-call in Python, and each is then
validated alone.  This module batches both axes:

**Generation** exploits the construction's translation symmetry.  XOR
translation by ``t`` is an automorphism of a sparse hypercube iff it
preserves every level's label function (the label blocks tile bits
``1..n_{k-1}``, so any ``t`` supported only on the free high dimensions
qualifies, as do in-block translations fixed by the labeling).  Those
``t`` form a subgroup ``T`` — :func:`translation_group` computes it from
the level metadata in one vectorized table lookup per level — and schedule
generation *commutes* with it: ``broadcast_schedule(sh, s ^ t)`` equals
``broadcast_schedule(sh, s)`` with every vertex XOR-translated by ``t``
(rounds re-sorted by caller).  So the engine generates **one schedule per
coset of T**, flattens it once into a call array, and derives the whole
coset as a single NumPy XOR broadcast over the stacked arrays.  On graphs
with little symmetry the cosets degenerate towards singletons and the
engine transparently falls back to per-source generation — correctness
never depends on the symmetry, and :func:`validate_all_sources`
additionally re-generates any source whose translated schedule fails
validation directly (the belt-and-braces fallback; the property tests pin
translated ≡ direct, so this path is never taken on healthy inputs).

**Validation** stacks layout-compatible schedules into
``(n_schedules, n_items)`` integer arrays — all schedules of one coset
share a layout, since translation preserves call lengths — and
:class:`BatchValidator` checks conditions V1–V8 for the whole stack in
vectorized passes: edge existence is one ``searchsorted`` over the
``(S, E)`` key matrix, per-round caller/receiver/edge disjointness are
axis-1 sorts with adjacent-equality sweeps, and the informed sets evolve
as one boolean ``(S, N)`` matrix.  Rows that fail any aggregate check
drop to the bitset fast validator (:mod:`repro.model.validator_fast`),
which reproduces the reference validator's exact error strings — so
per-schedule reports are identical to the reference by construction, at
stacked-array speed on the (overwhelmingly common) valid schedules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine import native
from repro.frame import ScheduleBuilder, ScheduleFrame
from repro.graphs.base import Graph
from repro.model.validator import ValidationReport, minimum_broadcast_rounds
from repro.model.validator_fast import (
    FastValidator,
    ScheduleLayout,
    flatten_schedule,
)
from repro.types import InvalidParameterError, Schedule

__all__ = [
    "ScheduleLayout",
    "StackedSchedules",
    "BatchReport",
    "BatchValidator",
    "AllSourcesOutcome",
    "translation_group",
    "coset_representatives",
    "flatten_schedule",
    "stack_schedules",
    "all_sources_schedules",
    "validate_all_sources",
]


# ---------------------------------------------------------------------------
# Stacked schedule representation
# ---------------------------------------------------------------------------
#
# ``ScheduleLayout`` and ``flatten_schedule`` live in
# :mod:`repro.model.validator_fast` (one implementation of the index
# arithmetic, shared with the fast validator) and are re-exported here.


@dataclass
class StackedSchedules:
    """``S`` layout-compatible schedules as one ``(S, n_items)`` array.

    Row ``i`` is the flat path-vertex sequence of the schedule from
    ``sources[i]``; the shared :class:`ScheduleLayout` says how to slice
    it.  Calls within a row's round are *not* required to be in caller
    order (XOR translation permutes callers); :meth:`to_schedule`
    restores the generator's ascending-caller order when materializing.
    """

    layout: ScheduleLayout
    sources: np.ndarray
    flat: np.ndarray

    @property
    def n_schedules(self) -> int:
        return int(self.sources.size)

    def row_index(self, source: int) -> int:
        hits = np.flatnonzero(self.sources == source)
        if not hits.size:
            raise InvalidParameterError(f"source {source} not in this stack")
        return int(hits[0])

    def to_frame(self, i: int, *, sort_calls: bool = False) -> ScheduleFrame:
        """Row ``i`` as a columnar :class:`~repro.frame.ScheduleFrame`.

        By default calls keep their stored order — the exact inverse of
        :func:`flatten_schedule`, which validation fallbacks rely on to
        reproduce reference error ordering; the frame then shares the
        stack's arrays with zero per-call work.  ``sort_calls=True``
        orders each round's calls by ascending caller instead, which is
        :func:`repro.core.broadcast.broadcast_schedule`'s order — XOR
        translation permutes callers, so translated rows need the re-sort
        to match direct generation (pinned by the property tests).
        """
        lay = self.layout
        row = self.flat[i]
        source = int(self.sources[i])
        if not sort_calls:
            return ScheduleFrame(
                source=source,
                path_verts=row.copy(),
                call_offsets=np.concatenate(([0], lay.path_ends)),
                round_offsets=lay.call_bounds.copy(),
            )
        builder = ScheduleBuilder(source)
        for r in range(lay.n_rounds):
            c0, c1 = int(lay.call_bounds[r]), int(lay.call_bounds[r + 1])
            paths = [
                tuple(int(v) for v in row[lay.path_starts[c] : lay.path_ends[c]])
                for c in range(c0, c1)
            ]
            paths.sort()
            builder.add_round(paths)
        return builder.build()

    def to_schedule(self, i: int, *, sort_calls: bool = False) -> Schedule:
        """Materialize row ``i`` as a frozen frame-backed :class:`Schedule`.

        See :meth:`to_frame` for call ordering; the object view is lazy,
        so consumers that only read counts or re-validate never pay
        object-per-call cost.
        """
        return Schedule.from_frame(self.to_frame(i, sort_calls=sort_calls))


def _group_by_layout(
    schedules: list[Schedule | ScheduleFrame],
) -> list[tuple[ScheduleLayout, list[int], np.ndarray]]:
    """Flatten and group schedules/frames by layout key, in first-seen order.

    Returns ``(layout, input_indices, stacked_flat_rows)`` per distinct
    layout; rows keep input order within their group.
    """
    groups: dict[bytes, tuple[ScheduleLayout, list[int], list[np.ndarray]]] = {}
    for idx, sched in enumerate(schedules):
        layout, flat = flatten_schedule(sched)
        entry = groups.get(layout.key())
        if entry is None:
            groups[layout.key()] = (layout, [idx], [flat])
        else:
            entry[1].append(idx)
            entry[2].append(flat)
    return [
        (layout, indices, np.vstack(flats))
        for layout, indices, flats in groups.values()
    ]


def stack_schedules(
    schedules: list[Schedule | ScheduleFrame],
) -> list[StackedSchedules]:
    """Group arbitrary schedules (or frames) by layout and stack each group.

    Returns one stack per distinct layout, in first-seen order; every
    input schedule appears in exactly one stack (rows keep input order
    within their group).
    """
    return [
        StackedSchedules(
            layout=layout,
            sources=np.array(
                [schedules[idx].source for idx in indices], dtype=np.int64
            ),
            flat=rows,
        )
        for layout, indices, rows in _group_by_layout(schedules)
    ]


# ---------------------------------------------------------------------------
# Translation symmetry and all-sources generation
# ---------------------------------------------------------------------------


def translation_group(sh) -> np.ndarray:
    """All ``t`` whose XOR translation preserves every level's labels.

    Sorted ``int64`` array; always a subgroup of ``(Z_2^n, ^)`` containing
    at least the ``2^(n - n_{k-1})`` translations supported on the free
    dimensions above the last threshold.  Label preservation implies edge
    preservation (ownership is a function of the label), and — pinned by
    the property tests — that ``broadcast_schedule`` commutes with the
    translation from every source.
    """
    ts = np.zeros(1, dtype=np.int64)
    for level in sh.levels:
        vals = np.arange(1 << level.block_len)
        labels = level.labeling.labels[vals]
        # row bt of the table holds the labels of vals ^ bt
        preserved = (
            level.labeling.labels[vals[:, None] ^ vals[None, :]] == labels[None, :]
        ).all(axis=1)
        good = np.flatnonzero(preserved).astype(np.int64) << level.block_lo
        ts = (ts[:, None] | good[None, :]).ravel()
    for b in range(sh.thresholds[-1], sh.n):
        ts = np.concatenate([ts, ts | np.int64(1 << b)])
    ts.sort()
    return ts


def coset_representatives(n_vertices: int, group: np.ndarray) -> list[int]:
    """Ascending minimal representatives of the cosets of ``group``."""
    seen = np.zeros(n_vertices, dtype=bool)
    reps = []
    for s in range(n_vertices):
        if not seen[s]:
            reps.append(s)
            seen[group ^ s] = True
    return reps


def all_sources_schedules(sh, sources=None) -> list[StackedSchedules]:
    """Broadcast schedules for many sources, one stack per layout.

    Generates ``broadcast_schedule(sh, r)`` once per coset of the
    translation group and derives the rest of the coset as XOR
    translations of the stacked call arrays.  ``sources`` (default: all
    ``2^n``) restricts the output rows — cosets with no requested source
    are never generated.  Rows are in ascending source order within each
    stack; stacks of equal layout are merged.
    """
    stacks, _n_cosets = _coset_stacks(sh, sources)
    return stacks


def _coset_stacks(sh, sources) -> tuple[list[StackedSchedules], int]:
    """The stacks plus the total coset count (reported by the pipeline
    without recomputing the group walk)."""
    from repro.core.broadcast import broadcast_schedule

    group = translation_group(sh)
    n = sh.n_vertices
    if sources is None:
        wanted = None
    else:
        requested = np.asarray(list(sources), dtype=np.int64)
        bad = requested[(requested < 0) | (requested >= n)]
        if bad.size:  # match the per-source generator's error, not a raw
            raise InvalidParameterError(  # IndexError / negative aliasing
                f"source {int(bad[0])} out of range [0, {n})"
            )
        wanted = np.zeros(n, dtype=bool)
        wanted[requested] = True
    groups: dict[bytes, tuple[ScheduleLayout, list[np.ndarray], list[np.ndarray]]] = {}
    reps = coset_representatives(n, group)
    for rep in reps:
        coset = group ^ rep
        if wanted is not None:
            ts = group[wanted[coset]]
            if not ts.size:
                continue
        else:
            ts = group
        layout, flat = flatten_schedule(broadcast_schedule(sh, rep))
        # Order the translations by resulting source first, so the XOR
        # broadcast materializes the row block directly in source order
        # (no post-hoc fancy-index copy of the big array).
        ts = ts[np.argsort(ts ^ rep)]
        rows = flat[None, :] ^ ts[:, None]
        srcs = ts ^ rep
        entry = groups.get(layout.key())
        if entry is None:
            groups[layout.key()] = (layout, [srcs], [rows])
        else:
            entry[1].append(srcs)
            entry[2].append(rows)
    out = []
    for layout, srcs_list, rows_list in groups.values():
        if len(srcs_list) == 1:  # common case: avoid a full-array copy
            srcs, rows = srcs_list[0], rows_list[0]
        else:
            srcs = np.concatenate(srcs_list)
            rows = np.vstack(rows_list)
            order = np.argsort(srcs)
            srcs, rows = srcs[order], rows[order]
        out.append(StackedSchedules(layout=layout, sources=srcs, flat=rows))
    return out, len(reps)


# ---------------------------------------------------------------------------
# Batch validation
# ---------------------------------------------------------------------------


@dataclass
class BatchReport:
    """Verdicts for one stack: per-row ok flags plus exact reports.

    ``reports[i]`` is identical (errors, statistics, verdict) to what the
    reference validator returns for row ``i``'s schedule — rows passing
    the aggregate checks get their report synthesized from the batch
    arrays, failing rows are re-validated by the fast validator.
    """

    ok: np.ndarray
    reports: list[ValidationReport]
    max_call_length: int

    @property
    def all_ok(self) -> bool:
        return bool(self.ok.all())


class BatchValidator:
    """Definition-1 validation over stacked schedule arrays.

    Bound to one graph; reuses (or builds) a :class:`FastValidator` both
    for its sorted edge-key array and as the exact fallback on failing
    rows.  For validating many schedules on one graph, construct through
    :func:`repro.engine.cache.batch_validator_for` so the edge keys are
    shared process-wide.
    """

    def __init__(self, graph: Graph, fast: FastValidator | None = None) -> None:
        self.graph = graph
        self.fast = fast if fast is not None else FastValidator(graph)

    # -- single stack -------------------------------------------------------

    def validate_stacked(
        self,
        stack: StackedSchedules,
        k: int,
        *,
        require_minimum_time: bool = True,
        vertex_disjoint: bool = False,
    ) -> BatchReport:
        """Validate every row of ``stack``; reports match the reference."""
        lay = stack.layout
        n = self.graph.n_vertices
        S = stack.n_schedules
        if S == 0:
            return BatchReport(
                ok=np.zeros(0, dtype=bool), reports=[], max_call_length=0
            )
        R = lay.n_rounds
        rows = np.arange(S)[:, None]
        # Rows needing the exact fallback (any aggregate check failed).
        bad = (stack.sources < 0) | (stack.sources >= n)
        # Rows with out-of-range path vertices go to the exact fallback
        # (which raises the reference's InvalidParameterError); clip a
        # copy so the fancy indexing below stays in bounds for the rest.
        flat = stack.flat
        if flat.size:
            oob = ((flat < 0) | (flat >= n)).any(axis=1)
            if oob.any():
                bad |= oob
                flat = np.clip(flat, 0, n - 1)
        # V2: call lengths are layout-level — one check covers every row.
        if lay.n_calls and int(lay.lengths.max()) > k:
            bad |= True
        # V1: one batched searchsorted over the (S, E) edge-key matrix.
        if lay.n_edges:
            us = flat[:, lay.us_idx]
            vs = flat[:, lay.vs_idx]
            keys = np.minimum(us, vs) * n + np.maximum(us, vs)
            edge_keys = self.fast.edge_keys
            if edge_keys.size:
                pos = np.searchsorted(edge_keys, keys)
                pos_c = np.minimum(pos, edge_keys.size - 1)
                missing = (pos != pos_c) | (edge_keys[pos_c] != keys)
            else:
                missing = np.ones_like(keys, dtype=bool)
            bad |= missing.any(axis=1)
        else:
            keys = np.empty((S, 0), dtype=np.int64)

        informed = np.zeros((S, n), dtype=bool)
        valid_src = ~((stack.sources < 0) | (stack.sources >= n))
        informed[valid_src, np.clip(stack.sources, 0, n - 1)[valid_src]] = True
        informed_counts = np.empty((S, R), dtype=np.int64)
        if native.native_enabled():
            # Compiled twin of the round loop below (numba,
            # REPRO_NATIVE-gated); predicate-for-predicate identical, and
            # failing rows still drop to the exact fallback either way.
            round_bad, informed_counts = native.batch_rounds(
                lay.call_bounds,
                lay.edge_bounds,
                lay.path_starts,
                lay.path_ends,
                flat,
                keys,
                informed,
                vertex_disjoint,
            )
            bad |= round_bad
            return self._stack_reports(
                stack,
                k,
                bad,
                informed,
                informed_counts,
                require_minimum_time=require_minimum_time,
                vertex_disjoint=vertex_disjoint,
            )
        for r in range(R):
            c0, c1 = int(lay.call_bounds[r]), int(lay.call_bounds[r + 1])
            if c1 > c0:
                e0, e1 = int(lay.edge_bounds[r]), int(lay.edge_bounds[r + 1])
                srcs_r = flat[:, lay.path_starts[c0:c1]]
                recv_r = flat[:, lay.path_ends[c0:c1] - 1]
                # V3 + V4: callers informed, at most one call per caller.
                round_bad = ~informed[rows, srcs_r].all(axis=1)
                ss = np.sort(srcs_r, axis=1)
                round_bad |= (ss[:, 1:] == ss[:, :-1]).any(axis=1)
                # V6: receivers pairwise distinct and not yet informed.
                rs = np.sort(recv_r, axis=1)
                round_bad |= (rs[:, 1:] == rs[:, :-1]).any(axis=1)
                round_bad |= informed[rows, recv_r].any(axis=1)
                # V5: per-round edge-disjointness.
                ks = np.sort(keys[:, e0:e1], axis=1)
                round_bad |= (ks[:, 1:] == ks[:, :-1]).any(axis=1)
                if vertex_disjoint:
                    p0 = int(lay.path_starts[c0])
                    p1 = int(lay.path_ends[c1 - 1])
                    vv = np.sort(flat[:, p0:p1], axis=1)
                    round_bad |= (vv[:, 1:] == vv[:, :-1]).any(axis=1)
                bad |= round_bad
                # Mirror the reference: receivers become informed even in
                # an invalid round.
                informed[rows, recv_r] = True
            informed_counts[:, r] = informed.sum(axis=1)

        return self._stack_reports(
            stack,
            k,
            bad,
            informed,
            informed_counts,
            require_minimum_time=require_minimum_time,
            vertex_disjoint=vertex_disjoint,
        )

    def _stack_reports(
        self,
        stack: StackedSchedules,
        k: int,
        bad: np.ndarray,
        informed: np.ndarray,
        informed_counts: np.ndarray,
        *,
        require_minimum_time: bool,
        vertex_disjoint: bool,
    ) -> BatchReport:
        """Turn the stacked sweep's aggregates into per-row reports.

        Shared tail of :meth:`validate_stacked` (NumPy and native round
        loops): rows flagged ``bad`` drop to the exact fast-validator
        fallback for reference error strings; clean rows get the
        screened report straight from the aggregates.
        """
        lay = stack.layout
        n = self.graph.n_vertices
        S = stack.n_schedules
        R = lay.n_rounds
        complete = informed.all(axis=1)
        need = minimum_broadcast_rounds(n)
        max_len = lay.max_call_length
        ok = np.empty(S, dtype=bool)
        reports: list[ValidationReport] = []
        for i in range(S):
            if bad[i]:
                report = self.fast.validate(
                    stack.to_schedule(i),
                    k,
                    require_minimum_time=require_minimum_time,
                    vertex_disjoint=vertex_disjoint,
                )
            else:
                report = ValidationReport(
                    ok=True,
                    rounds=R,
                    informed_per_round=informed_counts[i].tolist(),
                    max_call_length=max_len,
                )
                if not complete[i]:
                    got = int(informed_counts[i, -1]) if R else 1
                    report.errors.append(f"broadcast incomplete: {got} of {n} informed")
                if require_minimum_time and R != need:
                    report.errors.append(
                        f"schedule uses {R} rounds, minimum time is {need}"
                    )
                report.ok = not report.errors
            ok[i] = report.ok
            reports.append(report)
        return BatchReport(ok=ok, reports=reports, max_call_length=max_len)

    # -- arbitrary schedule lists -------------------------------------------

    def validate_many(
        self,
        schedules: list[Schedule | ScheduleFrame],
        k: int,
        *,
        require_minimum_time: bool = True,
        vertex_disjoint: bool = False,
        jobs: int = 1,
    ) -> list[ValidationReport]:
        """Reference-identical reports for a heterogeneous schedule list.

        Accepts ``Schedule`` objects and columnar frames interchangeably;
        schedules are grouped by layout, each group validated as one
        stack, and results come back in input order.  ``jobs > 1``
        routes through the zero-copy shared-memory path
        (:func:`repro.engine.parallel.validate_many_parallel`) — same
        reports, same order.
        """
        if jobs > 1:
            from repro.engine.parallel import validate_many_parallel

            return validate_many_parallel(
                self.graph,
                schedules,
                k,
                jobs=jobs,
                require_minimum_time=require_minimum_time,
                vertex_disjoint=vertex_disjoint,
            )
        results: list[ValidationReport | None] = [None] * len(schedules)
        for layout, indices, rows in _group_by_layout(schedules):
            stack = StackedSchedules(
                layout=layout,
                sources=np.array(
                    [schedules[idx].source for idx in indices], dtype=np.int64
                ),
                flat=rows,
            )
            report = self.validate_stacked(
                stack,
                k,
                require_minimum_time=require_minimum_time,
                vertex_disjoint=vertex_disjoint,
            )
            for row, idx in enumerate(indices):
                results[idx] = report.reports[row]
        return results  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# The all-sources pipeline (generation + validation + fallback)
# ---------------------------------------------------------------------------


@dataclass
class AllSourcesOutcome:
    """Per-source verdicts of the batch generate-and-validate pipeline."""

    sources: list[int]
    ok: list[bool]
    rounds: list[int]
    max_call_lengths: list[int]
    n_cosets: int
    n_stacks: int
    n_fallback: int

    @property
    def all_ok(self) -> bool:
        return all(self.ok)

    @property
    def max_call_length(self) -> int:
        return max(self.max_call_lengths, default=0)


def validate_all_sources(
    sh,
    *,
    k: int | None = None,
    sources=None,
    require_minimum_time: bool = True,
    vertex_disjoint: bool = False,
) -> AllSourcesOutcome:
    """Generate and validate the scheme's schedule for many sources.

    The batch path end-to-end: coset-translated generation, stacked-array
    validation, and — should a translated schedule ever fail — direct
    per-source regeneration, so verdicts always equal the per-source loop
    (``broadcast_schedule`` + fast validator) exactly.
    """
    from repro.core.broadcast import broadcast_schedule
    from repro.engine.cache import batch_validator_for

    if sources is not None:
        sources = [int(s) for s in sources]  # materialize: iterated twice
    k_eff = sh.k if k is None else k
    validator = batch_validator_for(sh.graph)
    stacks, n_cosets = _coset_stacks(sh, sources)
    per_source: dict[int, tuple[bool, int, int]] = {}
    n_fallback = 0
    for stack in stacks:
        batch = validator.validate_stacked(
            stack,
            k_eff,
            require_minimum_time=require_minimum_time,
            vertex_disjoint=vertex_disjoint,
        )
        for i in range(stack.n_schedules):
            src = int(stack.sources[i])
            if batch.ok[i]:
                per_source[src] = (True, stack.layout.n_rounds, batch.max_call_length)
            else:
                # Correctness fallback: distrust the translation entirely
                # and re-derive this source's verdict from scratch.
                n_fallback += 1
                sched = broadcast_schedule(sh, src)
                report = validator.fast.validate(
                    sched,
                    k_eff,
                    require_minimum_time=require_minimum_time,
                    vertex_disjoint=vertex_disjoint,
                )
                per_source[src] = (report.ok, len(sched.rounds), report.max_call_length)
    ordered = sorted(per_source) if sources is None else sources
    return AllSourcesOutcome(
        sources=ordered,
        ok=[per_source[s][0] for s in ordered],
        rounds=[per_source[s][1] for s in ordered],
        max_call_lengths=[per_source[s][2] for s in ordered],
        n_cosets=n_cosets,
        n_stacks=len(stacks),
        n_fallback=n_fallback,
    )
