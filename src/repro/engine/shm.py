"""Zero-copy plane store: frame/CSR arrays in shared memory.

The parallel validation path (:mod:`repro.engine.parallel`) and any
future multi-process consumer move NumPy planes between processes
without pickling array payloads:

* the **parent** exports arrays once into named
  ``multiprocessing.shared_memory`` segments through a
  :class:`PlaneRegistry` (a context manager that owns the segments and
  guarantees unlink on exit or error — the only place in the repo
  allowed to create ``SharedMemory``, enforced by lint rule RL009);
* what crosses the process boundary is a tiny :class:`PlaneHandle`
  (backend + segment name + dtype + shape — a few hundred bytes however
  large the plane);
* **workers** call ``handle.attach()`` and get a read-only NumPy view
  directly over the shared pages — no copies.  :class:`FrameHandle` and
  :class:`GraphHandle` bundle the planes of one
  :class:`~repro.frame.ScheduleFrame` / one frozen
  :class:`~repro.graphs.base.Graph` and reattach them as full objects
  (``ScheduleFrame``'s constructor takes the contiguous int64 views
  as-is; ``Graph.from_csr`` installs them as the graph's CSR cache).

Where POSIX shared memory is unavailable the registry falls back to
plain files in a temporary directory attached via ``np.memmap`` — same
handles, same zero-copy reads through the page cache.  ``REPRO_SHM=shm``
or ``REPRO_SHM=mmap`` forces a backend; the default probes once per
process.

Failures at this layer are never fatal to a run: every export/attach
fault (including ones injected by :mod:`repro.devtools.chaos`) surfaces
as :class:`~repro.errors.ShmAttachError`, and
:class:`InlinePlaneHandle` provides the degraded transport tier — the
same handle protocol, but the array rides inside the pickle (a copy per
worker instead of a shared mapping).  :mod:`repro.engine.parallel`
falls back plane-by-plane on export failures and process-wide on attach
failures; verdicts are byte-identical on every tier because attached
arrays are read-only and value-equal regardless of how they traveled.

CPython ≤ 3.12 registers *attached* segments with the resource tracker
as if they were owned (python/cpython#82300); :func:`_attach_segment`
documents why that is harmless inside one pool's process tree (shared
tracker, set-dedup'd names) and uses ``track=False`` on 3.13+ where the
proper knob exists.
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile
from dataclasses import dataclass
from multiprocessing import shared_memory
from types import TracebackType
from typing import Literal

import numpy as np

from repro.devtools import chaos
from repro.errors import ShmAttachError
from repro.frame import ScheduleFrame
from repro.graphs.base import Graph

__all__ = [
    "AnyPlaneHandle",
    "Backend",
    "InlinePlaneHandle",
    "PlaneHandle",
    "FrameHandle",
    "GraphHandle",
    "PlaneRegistry",
    "default_backend",
    "detach_all",
    "inline_plane",
]

Backend = Literal["shm", "mmap"]

_PROBED_BACKEND: Backend | None = None


def default_backend() -> Backend:
    """The plane backend for this process.

    ``REPRO_SHM=shm|mmap`` forces a choice (any other non-empty value
    is an error — a typo must not silently fall back to the probe when
    tests/CI force a backend); otherwise POSIX shared memory is probed
    once (create + unlink a 1-byte segment) and the mmap-file fallback
    is used where that fails (e.g. no ``/dev/shm``).
    """
    global _PROBED_BACKEND
    forced = os.environ.get("REPRO_SHM", "").strip().lower()
    if forced in ("shm", "mmap"):
        return forced  # type: ignore[return-value]
    if forced:
        raise ValueError(
            f"REPRO_SHM must be 'shm', 'mmap', or unset, got {forced!r}"
        )
    if _PROBED_BACKEND is None:
        try:
            seg = shared_memory.SharedMemory(create=True, size=1)
            seg.close()
            seg.unlink()
            _PROBED_BACKEND = "shm"
        except (OSError, ValueError):
            _PROBED_BACKEND = "mmap"
    return _PROBED_BACKEND


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without claiming ownership.

    3.13+ has ``track=False`` for exactly this.  On ≤3.12 attaching
    auto-registers with the resource tracker (python/cpython#82300); in
    a pool the tracker process is *shared* by the whole process tree and
    its name cache is a set, so the duplicate registration is a no-op
    and the registry's ``unlink`` removes the name exactly once — no
    extra unregister needed (one would corrupt the shared accounting).
    The ordering contract that keeps this true: workers attach strictly
    before the owning registry unlinks (pool joins first).
    """
    if sys.version_info >= (3, 13):
        return shared_memory.SharedMemory(name=name, track=False)
    return shared_memory.SharedMemory(name=name)


# Process-local attach cache: (backend, name) -> (buffer owner, base
# array).  Keeps each segment mapped exactly once per process however
# many handles reference it, and keeps the owner alive as long as views
# may exist.
_ATTACHED: dict[tuple[str, str], tuple[object, np.ndarray]] = {}


def detach_all() -> None:
    """Drop this process's attach cache and close its segment mappings.

    Safe to call at any point (worker shutdown, test teardown); views
    already handed out keep their segment mapped until they are garbage
    collected (``close`` on a still-viewed segment is skipped).
    """
    owners = [owner for owner, _ in _ATTACHED.values()]
    _ATTACHED.clear()  # frees the base arrays first so close() can succeed
    for owner in owners:
        if isinstance(owner, shared_memory.SharedMemory):
            try:
                owner.close()
            except BufferError:  # live views outside the cache
                pass


@dataclass(frozen=True)
class PlaneHandle:
    """One exported array: pickles as names + dtype + shape, never data."""

    backend: Backend
    name: str
    dtype: str
    shape: tuple[int, ...]

    def attach(self) -> np.ndarray:
        """A read-only view over the shared plane (cached per process).

        Raises :class:`~repro.errors.ShmAttachError` when the segment or
        backing file cannot be mapped (gone, truncated, permission, or a
        chaos-injected failure) — the signal the parallel engine uses to
        degrade to pickled-copy transport.
        """
        key = (self.backend, self.name)
        cached = _ATTACHED.get(key)
        if cached is None:
            if chaos.should_fail_attach():
                raise ShmAttachError(
                    f"chaos-injected attach failure for plane {self.name!r}",
                    name=self.name,
                )
            try:
                if self.backend == "shm":
                    seg = _attach_segment(self.name)
                    base = np.frombuffer(seg.buf, dtype=np.uint8)
                    cached = (seg, base)
                else:
                    size = os.path.getsize(self.name)
                    if size == 0:
                        base = np.empty(0, dtype=np.uint8)
                    else:
                        base = np.memmap(self.name, dtype=np.uint8, mode="r")
                    cached = (None, base)
            except (OSError, ValueError) as exc:
                raise ShmAttachError(
                    f"cannot attach plane {self.name!r}: {exc}", name=self.name
                ) from exc
            _ATTACHED[key] = cached
        _, base = cached
        dtype = np.dtype(self.dtype)
        count = int(np.prod(self.shape, dtype=np.int64))
        try:
            arr = base[: count * dtype.itemsize].view(dtype).reshape(self.shape)
        except ValueError as exc:  # truncated segment/file
            raise ShmAttachError(
                f"plane {self.name!r} too small for {self.dtype}{self.shape}: "
                f"{exc}",
                name=self.name,
            ) from exc
        arr.setflags(write=False)
        return arr


@dataclass(frozen=True)
class InlinePlaneHandle:
    """Degraded transport tier: the plane rides inside the pickle.

    Same ``attach()`` protocol as :class:`PlaneHandle`, but the array is
    carried by value — each worker receives a private copy instead of a
    shared mapping.  Used when shared-memory export or attach fails
    (:class:`~repro.errors.ShmAttachError`): slower, never wrong, and
    value-equal to the shared tier so verdicts stay byte-identical.
    """

    data: np.ndarray

    def attach(self) -> np.ndarray:
        arr = self.data
        arr.setflags(write=False)
        return arr


AnyPlaneHandle = PlaneHandle | InlinePlaneHandle


def inline_plane(arr: np.ndarray) -> InlinePlaneHandle:
    """Wrap ``arr`` for pickled-copy transport (read-only, contiguous)."""
    contig = np.ascontiguousarray(arr)
    contig.setflags(write=False)
    return InlinePlaneHandle(contig)


@dataclass(frozen=True)
class FrameHandle:
    """A :class:`ScheduleFrame` as three plane handles plus its source."""

    source: int
    path_verts: AnyPlaneHandle
    call_offsets: AnyPlaneHandle
    round_offsets: AnyPlaneHandle

    def attach(self) -> ScheduleFrame:
        """Rebuild the frame over shared planes (zero-copy: the frame
        constructor keeps contiguous read-only int64 inputs as-is)."""
        return ScheduleFrame(
            source=self.source,
            path_verts=self.path_verts.attach(),
            call_offsets=self.call_offsets.attach(),
            round_offsets=self.round_offsets.attach(),
        )


@dataclass(frozen=True)
class GraphHandle:
    """A frozen graph's CSR adjacency as two plane handles."""

    indptr: AnyPlaneHandle
    indices: AnyPlaneHandle

    def attach(self) -> Graph:
        """Rebuild the frozen graph; the shared CSR views become the
        graph's CSR cache, so vectorized sweeps stay zero-copy."""
        return Graph.from_csr(self.indptr.attach(), self.indices.attach())


class PlaneRegistry:
    """Owner of exported planes; guarantees unlink on exit or error.

    Use as a context manager around the full parallel region — workers
    must have joined (detached) before ``close`` runs, exactly like the
    pool-then-registry nesting in :mod:`repro.engine.parallel`:

    >>> with PlaneRegistry() as reg:
    ...     handle = reg.export_frame(frame)
    ...     ...  # hand `handle` to workers; join the pool
    """

    def __init__(self, backend: Backend | None = None) -> None:
        self.backend: Backend = backend if backend is not None else default_backend()
        self._segments: list[shared_memory.SharedMemory] = []
        self._tmpdir: str | None = None
        # id(arr) -> (arr, handle).  The array reference PINS the caller's
        # object for the registry's lifetime: without it CPython could
        # garbage-collect an exported array and reuse its address for a
        # different array, making the identity-keyed dedup silently
        # return a stale handle (wrong plane attached in workers).
        self._by_id: dict[int, tuple[np.ndarray, PlaneHandle]] = {}
        self._n_planes = 0
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> PlaneRegistry:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    def close(self) -> None:
        """Unlink every exported segment / remove the mmap directory.

        Idempotent; called from ``__exit__`` so an exception anywhere in
        the managed block still releases all shared memory.
        """
        if self._closed:
            return
        self._closed = True
        for seg in self._segments:
            try:
                seg.close()
            except BufferError:  # pragma: no cover - export leaks no views
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()
        if self._tmpdir is not None:
            shutil.rmtree(self._tmpdir, ignore_errors=True)
            self._tmpdir = None
        self._by_id.clear()

    # -- export ------------------------------------------------------------

    def export(self, arr: np.ndarray) -> PlaneHandle:
        """Copy ``arr`` into a shared plane once; returns its handle.

        Re-exporting the same array object returns the existing handle
        (identity-keyed), so stacked frames sharing planes — e.g.
        ``StackedSchedules`` rows over one ``flat`` buffer — are stored
        once.
        """
        if self._closed:
            raise RuntimeError("PlaneRegistry is closed")
        pinned = self._by_id.get(id(arr))
        if pinned is not None:
            return pinned[1]
        if chaos.should_fail_export():
            raise ShmAttachError("chaos-injected export failure")
        contig = np.ascontiguousarray(arr)
        try:
            if self.backend == "shm":
                seg = shared_memory.SharedMemory(
                    create=True, size=max(1, contig.nbytes)
                )
                dst = np.frombuffer(seg.buf, dtype=np.uint8)
                dst[: contig.nbytes] = contig.view(np.uint8).reshape(-1)
                del dst
                self._segments.append(seg)
                name = seg.name
            else:
                if self._tmpdir is None:
                    self._tmpdir = tempfile.mkdtemp(prefix="repro-planes-")
                name = os.path.join(
                    self._tmpdir, f"plane-{self._n_planes:04d}.bin"
                )
                contig.tofile(name)
        except OSError as exc:  # /dev/shm full, tmpdir unwritable, ...
            raise ShmAttachError(f"cannot export plane: {exc}") from exc
        self._n_planes += 1
        handle = PlaneHandle(self.backend, name, str(contig.dtype), contig.shape)
        self._by_id[id(arr)] = (arr, handle)
        return handle

    def export_frame(self, frame: ScheduleFrame) -> FrameHandle:
        """Export one frame's three call-array planes."""
        return FrameHandle(
            source=frame.source,
            path_verts=self.export(frame.path_verts),
            call_offsets=self.export(frame.call_offsets),
            round_offsets=self.export(frame.round_offsets),
        )

    def export_graph(self, graph: Graph) -> GraphHandle:
        """Export a frozen graph's CSR planes."""
        indptr, indices = graph.csr_arrays()
        return GraphHandle(indptr=self.export(indptr), indices=self.export(indices))
