"""Zero-copy parallel stacked validation.

:func:`validate_many_parallel` is ``BatchValidator.validate_many``
spread across worker processes without pickling a single schedule
array:

1. the parent groups schedules by layout (exactly like the serial
   path), stacks each group, and exports the graph's CSR planes plus
   every stack's ``sources``/``flat`` planes into a
   :class:`~repro.engine.shm.PlaneRegistry`;
2. workers are born with a pool initializer that attaches the shared
   planes **once** (rebuilding each :class:`ScheduleLayout` from its
   tiny pickled ``(counts, lengths)`` pair) and pre-warms the per-graph
   kernel cache, so every later task is pure compute;
3. tasks are ``(stack, row_lo, row_hi)`` slices — a few integers each —
   validated against zero-copy row views of the attached stacks; the
   per-row :class:`~repro.model.validator.ValidationReport` objects are
   the only payload that ever crosses back.

Verdicts, error strings, and report ordering are byte-identical to the
serial path by construction: workers run the same
``BatchValidator.validate_stacked`` (with the same reference-validator
fallback) over the same arrays, and results are reassembled in input
order.  The registry closes only after the pool has joined, so shared
segments never outlive the call — including on error.
"""

from __future__ import annotations

import numpy as np

from repro.engine.batch import StackedSchedules, _group_by_layout
from repro.engine.cache import batch_validator_for
from repro.engine.shm import GraphHandle, PlaneHandle, PlaneRegistry, detach_all
from repro.graphs.base import Graph
from repro.model.validator import ValidationReport
from repro.model.validator_fast import ScheduleLayout
from repro.util.pool import fan_out
from repro.frame import ScheduleFrame
from repro.types import Schedule

__all__ = ["validate_many_parallel"]

# Below this many schedules the pool spin-up dominates any win.
MIN_PARALLEL_SCHEDULES = 8

# -- worker side ------------------------------------------------------------

# Populated by the pool initializer; one attach per worker process.
_WORKER: dict[str, object] | None = None


def _init_worker(
    graph_handle: GraphHandle,
    stack_meta: tuple[tuple[PlaneHandle, PlaneHandle, bytes, bytes], ...],
) -> None:
    """Attach shared planes and warm the kernel cache (once per worker)."""
    global _WORKER
    graph = graph_handle.attach()
    validator = batch_validator_for(graph)  # pre-warms kernels + edge keys
    stacks = []
    for sources_h, flat_h, counts_b, lengths_b in stack_meta:
        layout = ScheduleLayout.from_counts(
            np.frombuffer(counts_b, dtype=np.int64),
            np.frombuffer(lengths_b, dtype=np.int64),
        )
        stacks.append(
            StackedSchedules(
                layout=layout, sources=sources_h.attach(), flat=flat_h.attach()
            )
        )
    _WORKER = {"graph": graph, "validator": validator, "stacks": stacks}


def _validate_slice(
    task: tuple[int, int, int, int, bool, bool],
) -> list[ValidationReport]:
    """Validate rows ``lo:hi`` of one attached stack (worker entry)."""
    assert _WORKER is not None, "pool initializer did not run"
    stack_idx, lo, hi, k, require_minimum_time, vertex_disjoint = task
    stacks = _WORKER["stacks"]
    validator = _WORKER["validator"]
    stack = stacks[stack_idx]
    piece = StackedSchedules(
        layout=stack.layout,
        sources=stack.sources[lo:hi],
        flat=stack.flat[lo:hi],
    )
    report = validator.validate_stacked(
        piece,
        k,
        require_minimum_time=require_minimum_time,
        vertex_disjoint=vertex_disjoint,
    )
    return report.reports


# -- parent side ------------------------------------------------------------


def _slice_tasks(
    row_counts: list[int],
    jobs: int,
    k: int,
    require_minimum_time: bool,
    vertex_disjoint: bool,
) -> list[tuple[int, int, int, int, bool, bool]]:
    """Split stacks into row slices: ~4 slices per worker across all rows."""
    total = sum(row_counts)
    slice_rows = max(1, -(-total // (jobs * 4)))
    tasks = []
    for stack_idx, count in enumerate(row_counts):
        lo = 0
        while lo < count:
            hi = min(count, lo + slice_rows)
            tasks.append(
                (stack_idx, lo, hi, k, require_minimum_time, vertex_disjoint)
            )
            lo = hi
    return tasks


def validate_many_parallel(
    graph: Graph,
    schedules: list[Schedule | ScheduleFrame],
    k: int,
    *,
    jobs: int,
    require_minimum_time: bool = True,
    vertex_disjoint: bool = False,
    backend: str | None = None,
) -> list[ValidationReport]:
    """Reference-identical reports for ``schedules``, across ``jobs``
    workers over shared-memory planes.

    Drop-in parallel twin of ``BatchValidator.validate_many`` (which
    delegates here when asked for ``jobs > 1``); falls back to the
    serial path when parallelism cannot pay.  ``backend`` forces the
    plane store ("shm"/"mmap", default: probe).
    """
    if jobs <= 1 or len(schedules) < MIN_PARALLEL_SCHEDULES:
        return batch_validator_for(graph).validate_many(
            schedules,
            k,
            require_minimum_time=require_minimum_time,
            vertex_disjoint=vertex_disjoint,
        )
    global _WORKER
    groups = _group_by_layout(schedules)
    results: list[ValidationReport | None] = [None] * len(schedules)
    try:
        with PlaneRegistry(backend) as registry:  # type: ignore[arg-type]
            graph_handle = registry.export_graph(graph)
            stack_meta = []
            for layout, indices, rows in groups:
                sources = np.array(
                    [schedules[idx].source for idx in indices], dtype=np.int64
                )
                stack_meta.append(
                    (
                        registry.export(sources),
                        registry.export(rows),
                        layout.counts.tobytes(),
                        layout.lengths.tobytes(),
                    )
                )
            tasks = _slice_tasks(
                [len(indices) for _, indices, _ in groups],
                jobs,
                k,
                require_minimum_time,
                vertex_disjoint,
            )
            # fan_out joins its pool before returning, so every worker
            # has detached before the registry unlinks on __exit__.
            slices = fan_out(
                _validate_slice,
                tasks,
                jobs,
                initializer=_init_worker,
                initargs=(graph_handle, tuple(stack_meta)),
            )
    finally:
        if _WORKER is not None:
            # fan_out took its in-process path, so _init_worker ran in
            # THIS process and attached the registry's planes here.  The
            # registry has now unlinked them; drop the parent-side
            # attach cache so no stale name-keyed mappings survive.
            _WORKER = None
            detach_all()
    for (stack_idx, lo, _hi, *_rest), reports in zip(tasks, slices):
        indices = groups[stack_idx][1]
        for offset, report in enumerate(reports):
            results[indices[lo + offset]] = report
    return results  # type: ignore[return-value]
