"""Zero-copy parallel stacked validation.

:func:`validate_many_parallel` is ``BatchValidator.validate_many``
spread across worker processes without pickling a single schedule
array:

1. the parent groups schedules by layout (exactly like the serial
   path), stacks each group, and exports the graph's CSR planes plus
   every stack's ``sources``/``flat`` planes into a
   :class:`~repro.engine.shm.PlaneRegistry`;
2. workers are born with a pool initializer that attaches the shared
   planes **once** (rebuilding each :class:`ScheduleLayout` from its
   tiny pickled ``(counts, lengths)`` pair) and pre-warms the per-graph
   kernel cache, so every later task is pure compute;
3. tasks are ``(stack, row_lo, row_hi)`` slices — a few integers each —
   validated against zero-copy row views of the attached stacks; the
   per-row :class:`~repro.model.validator.ValidationReport` objects are
   the only payload that ever crosses back.

Verdicts, error strings, and report ordering are byte-identical to the
serial path by construction: workers run the same
``BatchValidator.validate_stacked`` (with the same reference-validator
fallback) over the same arrays, and results are reassembled in input
order.  The registry closes only after the pool has joined, so shared
segments never outlive the call — including on error.

Transport degrades instead of aborting.  Tier 1 is the shared-plane
path above; a plane whose *export* fails
(:class:`~repro.errors.ShmAttachError`) is downgraded individually to
pickled-copy transport (:class:`~repro.engine.shm.InlinePlaneHandle`).
If the shared tier fails as a whole — workers cannot *attach* (the
initializer raises), or the pool exhausts its retry budget — tier 2
re-runs the batch with every plane pickled by value, and tier 3 is the
serial path in the parent.  Every downgrade is logged and counted
(:func:`transport_stats`); verdicts are byte-identical on all tiers
because each one feeds the same arrays to the same kernels.
"""

from __future__ import annotations

import logging

import numpy as np

from repro.engine.batch import StackedSchedules, _group_by_layout
from repro.engine.cache import batch_validator_for
from repro.engine.shm import (
    AnyPlaneHandle,
    GraphHandle,
    PlaneRegistry,
    detach_all,
    inline_plane,
)
from repro.errors import ExecutionError, ShmAttachError, format_cause
from repro.graphs.base import Graph
from repro.model.validator import ValidationReport
from repro.model.validator_fast import ScheduleLayout
from repro.util.pool import fan_out
from repro.frame import ScheduleFrame
from repro.types import Schedule

__all__ = ["validate_many_parallel", "transport_stats", "reset_transport_stats"]

_LOG = logging.getLogger(__name__)

# Below this many schedules the pool spin-up dominates any win.
MIN_PARALLEL_SCHEDULES = 8

# Degradation accounting (per process): how often each transport tier
# ran and how many individual planes fell back to pickled copies.
_TRANSPORT_COUNTS = {
    "shared": 0,
    "inline_planes": 0,
    "pickle": 0,
    "serial_fallback": 0,
}


def transport_stats() -> dict[str, int]:
    """A copy of this process's transport-tier counters."""
    return dict(_TRANSPORT_COUNTS)


def reset_transport_stats() -> None:
    """Zero the counters (test isolation)."""
    for key in _TRANSPORT_COUNTS:
        _TRANSPORT_COUNTS[key] = 0

# -- worker side ------------------------------------------------------------

# Populated by the pool initializer; one attach per worker process.
_WORKER: dict[str, object] | None = None


def _init_worker(
    graph_handle: GraphHandle,
    stack_meta: tuple[tuple[AnyPlaneHandle, AnyPlaneHandle, bytes, bytes], ...],
) -> None:
    """Attach shared planes and warm the kernel cache (once per worker)."""
    global _WORKER
    graph = graph_handle.attach()
    validator = batch_validator_for(graph)  # pre-warms kernels + edge keys
    stacks = []
    for sources_h, flat_h, counts_b, lengths_b in stack_meta:
        layout = ScheduleLayout.from_counts(
            np.frombuffer(counts_b, dtype=np.int64),
            np.frombuffer(lengths_b, dtype=np.int64),
        )
        stacks.append(
            StackedSchedules(
                layout=layout, sources=sources_h.attach(), flat=flat_h.attach()
            )
        )
    _WORKER = {"graph": graph, "validator": validator, "stacks": stacks}


def _validate_slice(
    task: tuple[int, int, int, int, bool, bool],
) -> list[ValidationReport]:
    """Validate rows ``lo:hi`` of one attached stack (worker entry)."""
    assert _WORKER is not None, "pool initializer did not run"
    stack_idx, lo, hi, k, require_minimum_time, vertex_disjoint = task
    stacks = _WORKER["stacks"]
    validator = _WORKER["validator"]
    stack = stacks[stack_idx]
    piece = StackedSchedules(
        layout=stack.layout,
        sources=stack.sources[lo:hi],
        flat=stack.flat[lo:hi],
    )
    report = validator.validate_stacked(
        piece,
        k,
        require_minimum_time=require_minimum_time,
        vertex_disjoint=vertex_disjoint,
    )
    return report.reports


# -- parent side ------------------------------------------------------------


def _slice_tasks(
    row_counts: list[int],
    jobs: int,
    k: int,
    require_minimum_time: bool,
    vertex_disjoint: bool,
) -> list[tuple[int, int, int, int, bool, bool]]:
    """Split stacks into row slices: ~4 slices per worker across all rows."""
    total = sum(row_counts)
    slice_rows = max(1, -(-total // (jobs * 4)))
    tasks = []
    for stack_idx, count in enumerate(row_counts):
        lo = 0
        while lo < count:
            hi = min(count, lo + slice_rows)
            tasks.append(
                (stack_idx, lo, hi, k, require_minimum_time, vertex_disjoint)
            )
            lo = hi
    return tasks


def _export_plane(registry: PlaneRegistry, arr: np.ndarray) -> AnyPlaneHandle:
    """Export one plane; degrade to a pickled copy on export failure."""
    try:
        return registry.export(arr)
    except ShmAttachError as exc:
        _TRANSPORT_COUNTS["inline_planes"] += 1
        _LOG.warning(
            "plane export failed (%s); using pickled-copy transport for "
            "this plane",
            format_cause(exc),
        )
        return inline_plane(arr)


def _run_tier(
    tier: str,
    graph: Graph,
    groups: list[tuple[ScheduleLayout, list[int], np.ndarray]],
    sources_per_group: list[np.ndarray],
    tasks: list[tuple[int, int, int, int, bool, bool]],
    jobs: int,
    backend: str | None,
) -> list[list[ValidationReport]]:
    """One transport tier end-to-end: export, fan out, join, clean up."""
    global _WORKER
    indptr, indices_arr = graph.csr_arrays()
    try:
        with PlaneRegistry(backend) as registry:  # type: ignore[arg-type]
            if tier == "shared":
                export = _export_plane
            else:  # "pickle": every plane rides inside the task pickle
                def export(
                    _reg: PlaneRegistry, arr: np.ndarray
                ) -> AnyPlaneHandle:
                    return inline_plane(arr)
            graph_handle = GraphHandle(
                indptr=export(registry, indptr),
                indices=export(registry, indices_arr),
            )
            stack_meta = []
            for (layout, _indices, rows), sources in zip(
                groups, sources_per_group
            ):
                stack_meta.append(
                    (
                        export(registry, sources),
                        export(registry, rows),
                        layout.counts.tobytes(),
                        layout.lengths.tobytes(),
                    )
                )
            # fan_out joins its pool before returning, so every worker
            # has detached before the registry unlinks on __exit__.
            return fan_out(
                _validate_slice,
                tasks,
                jobs,
                initializer=_init_worker,
                initargs=(graph_handle, tuple(stack_meta)),
            )
    finally:
        if _WORKER is not None:
            # fan_out took its in-process path, so _init_worker ran in
            # THIS process and attached the registry's planes here.  The
            # registry has now unlinked them; drop the parent-side
            # attach cache so no stale name-keyed mappings survive.
            _WORKER = None
            detach_all()


def validate_many_parallel(
    graph: Graph,
    schedules: list[Schedule | ScheduleFrame],
    k: int,
    *,
    jobs: int,
    require_minimum_time: bool = True,
    vertex_disjoint: bool = False,
    backend: str | None = None,
) -> list[ValidationReport]:
    """Reference-identical reports for ``schedules``, across ``jobs``
    workers over shared-memory planes.

    Drop-in parallel twin of ``BatchValidator.validate_many`` (which
    delegates here when asked for ``jobs > 1``); falls back to the
    serial path when parallelism cannot pay.  ``backend`` forces the
    plane store ("shm"/"mmap", default: probe).  Infrastructure faults
    never abort the call: the transport degrades shared → pickled-copy
    → serial (logged, counted via :func:`transport_stats`) and the
    reports are byte-identical on every tier.
    """
    if jobs <= 1 or len(schedules) < MIN_PARALLEL_SCHEDULES:
        return batch_validator_for(graph).validate_many(
            schedules,
            k,
            require_minimum_time=require_minimum_time,
            vertex_disjoint=vertex_disjoint,
        )
    groups = _group_by_layout(schedules)
    sources_per_group = [
        np.array([schedules[idx].source for idx in indices], dtype=np.int64)
        for _layout, indices, _rows in groups
    ]
    tasks = _slice_tasks(
        [len(indices) for _, indices, _ in groups],
        jobs,
        k,
        require_minimum_time,
        vertex_disjoint,
    )
    slices: list[list[ValidationReport]] | None = None
    for tier in ("shared", "pickle"):
        try:
            slices = _run_tier(
                tier, graph, groups, sources_per_group, tasks, jobs, backend
            )
            _TRANSPORT_COUNTS[tier] += 1
            break
        except ExecutionError as exc:
            _LOG.warning(
                "parallel validation %s tier failed (%s); degrading",
                tier,
                format_cause(exc),
            )
    if slices is None:
        # tier 3: the serial path in the parent — always available
        _TRANSPORT_COUNTS["serial_fallback"] += 1
        _LOG.warning("all parallel transport tiers failed; validating serially")
        return batch_validator_for(graph).validate_many(
            schedules,
            k,
            require_minimum_time=require_minimum_time,
            vertex_disjoint=vertex_disjoint,
        )
    results: list[ValidationReport | None] = [None] * len(schedules)
    for (stack_idx, lo, _hi, *_rest), reports in zip(tasks, slices):
        indices = groups[stack_idx][1]
        for offset, report in enumerate(reports):
            results[indices[lo + offset]] = report
    return results  # type: ignore[return-value]
