"""Compiled-kernel facade for the hottest validation inner loops.

Three kernels cover the loops profiling puts at the top of large
campaign runs:

``screen_counts``
    The fast validator's across-rounds V3–V6 accept screen
    (:meth:`repro.model.validator_fast.FastValidator._screen_counts`).
``batch_rounds``
    The batch validator's per-round stacked sweep
    (:meth:`repro.engine.batch.BatchValidator.validate_stacked`).
``reachable``
    The schedulers' bounded-depth BFS
    (:meth:`repro.engine.kernels.GraphKernels.reachable`).

Each kernel exists as a plain-Python/NumPy implementation (the ``*_py``
functions — written in the loop-and-1-D-``np.sort`` subset that numba's
``nopython`` mode supports) and, when ``numba`` is importable *and*
``REPRO_NATIVE`` is not ``0``, as an ``@njit``-compiled version selected
once at import.  Compilation is warmed on tiny inputs inside a
``try``/``except`` so any compile failure silently degrades to the
existing NumPy paths — numba is never a hard dependency, and the CI
matrix runs the whole tier-1 suite with ``REPRO_NATIVE=0`` to keep the
fallback exercised.

Exactness: the kernels replicate their NumPy counterparts check for
check (same predicates, same accept/reject boundary, same count
trajectories), and the call sites keep the reference validator as the
verdict oracle for anything that fails a screen — so error strings and
reports stay byte-identical whichever implementation runs.  The
identity is pinned by ``tests/engine/test_native.py`` on valid and
corrupted corpora.

``_set_enabled_for_testing`` forces the facade on (running the ``*_py``
implementations when numba is absent) or off, so the hook paths are
testable in any environment.
"""

from __future__ import annotations

import os
from typing import Any, Callable

import numpy as np

__all__ = [
    "NATIVE_COMPILED",
    "native_enabled",
    "screen_counts",
    "batch_rounds",
    "reachable",
    "mask_to_words",
]

# -- kernel implementations (numba nopython-compatible subset) --------------


def _screen_counts_py(
    source: int,
    n: int,
    counts: np.ndarray,
    lengths: np.ndarray,
    flat: np.ndarray,
    sources: np.ndarray,
    receivers: np.ndarray,
    keys: np.ndarray,
    vertex_disjoint: bool,
) -> tuple[bool, np.ndarray]:
    """V3–V6 across all rounds; (ok, informed-count trajectory)."""
    n_rounds = counts.shape[0]
    out = np.zeros(n_rounds, dtype=np.int64)
    n_calls = sources.shape[0]
    round_of_call = np.empty(n_calls, dtype=np.int64)
    c = 0
    for r in range(n_rounds):
        for _ in range(counts[r]):
            round_of_call[c] = r
            c += 1
    if n_calls > 0:
        # V6 across all rounds at once: receivers globally distinct and
        # never the (pre-informed) source.
        rs = np.sort(receivers)
        for i in range(1, n_calls):
            if rs[i] == rs[i - 1]:
                return False, out
        for i in range(n_calls):
            if receivers[i] == source:
                return False, out
    # Round in which each vertex becomes informed (source: before any).
    inform_round = np.full(n, n_rounds, dtype=np.int64)
    inform_round[source] = -1
    for i in range(n_calls):
        inform_round[receivers[i]] = round_of_call[i]
    if n_calls > 0:
        # V3: informed strictly before calling; V4: one call per caller
        # per round (duplicate (round, caller) pairs sort adjacent).
        for i in range(n_calls):
            if inform_round[sources[i]] >= round_of_call[i]:
                return False, out
        sk = np.sort(round_of_call * n + sources)
        for i in range(1, n_calls):
            if sk[i] == sk[i - 1]:
                return False, out
    n_edges = keys.shape[0]
    if n_edges > 0:
        # V5: edge-disjoint within each round.
        round_of_edge = np.empty(n_edges, dtype=np.int64)
        e = 0
        for i in range(n_calls):
            for _ in range(lengths[i]):
                round_of_edge[e] = round_of_call[i]
                e += 1
        ek = np.sort(round_of_edge * (n * n) + keys)
        for i in range(1, n_edges):
            if ek[i] == ek[i - 1]:
                return False, out
    n_items = flat.shape[0]
    if vertex_disjoint and n_items > 0:
        round_of_item = np.empty(n_items, dtype=np.int64)
        t = 0
        for i in range(n_calls):
            for _ in range(lengths[i] + 1):
                round_of_item[t] = round_of_call[i]
                t += 1
        vk = np.sort(round_of_item * n + flat)
        for i in range(1, n_items):
            if vk[i] == vk[i - 1]:
                return False, out
    for i in range(n_calls):
        out[round_of_call[i]] += 1
    acc = 1
    for r in range(n_rounds):
        acc += out[r]
        out[r] = acc
    return True, out


def _batch_rounds_py(
    call_bounds: np.ndarray,
    edge_bounds: np.ndarray,
    path_starts: np.ndarray,
    path_ends: np.ndarray,
    flat: np.ndarray,
    keys: np.ndarray,
    informed: np.ndarray,
    vertex_disjoint: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-round stacked V3–V6 sweep; mutates ``informed`` in place.

    Returns ``(bad, informed_counts)`` exactly as the NumPy round loop
    in ``BatchValidator.validate_stacked`` computes them (receivers
    become informed even in invalid rounds, mirroring the reference).
    """
    S = flat.shape[0]
    n = informed.shape[1]
    R = call_bounds.shape[0] - 1
    bad = np.zeros(S, dtype=np.bool_)
    informed_counts = np.zeros((S, R), dtype=np.int64)
    counts_now = np.zeros(S, dtype=np.int64)
    for i in range(S):
        c = 0
        for v in range(n):
            if informed[i, v]:
                c += 1
        counts_now[i] = c
    for r in range(R):
        c0 = call_bounds[r]
        c1 = call_bounds[r + 1]
        m = c1 - c0
        if m > 0:
            e0 = edge_bounds[r]
            e1 = edge_bounds[r + 1]
            p0 = path_starts[c0]
            p1 = path_ends[c1 - 1]
            for i in range(S):
                srcs = np.empty(m, dtype=np.int64)
                recv = np.empty(m, dtype=np.int64)
                for j in range(m):
                    srcs[j] = flat[i, path_starts[c0 + j]]
                    recv[j] = flat[i, path_ends[c0 + j] - 1]
                row_bad = False
                # V3 + V4: callers informed, at most one call per caller.
                for j in range(m):
                    if not informed[i, srcs[j]]:
                        row_bad = True
                ss = np.sort(srcs)
                for j in range(1, m):
                    if ss[j] == ss[j - 1]:
                        row_bad = True
                # V6: receivers pairwise distinct and not yet informed.
                rs = np.sort(recv)
                for j in range(1, m):
                    if rs[j] == rs[j - 1]:
                        row_bad = True
                for j in range(m):
                    if informed[i, recv[j]]:
                        row_bad = True
                # V5: per-round edge-disjointness.
                ks = np.sort(keys[i, e0:e1])
                for j in range(1, ks.shape[0]):
                    if ks[j] == ks[j - 1]:
                        row_bad = True
                if vertex_disjoint:
                    vv = np.sort(flat[i, p0:p1])
                    for j in range(1, vv.shape[0]):
                        if vv[j] == vv[j - 1]:
                            row_bad = True
                if row_bad:
                    bad[i] = True
                # Mirror the reference: receivers become informed even in
                # an invalid round.
                for j in range(m):
                    if not informed[i, recv[j]]:
                        informed[i, recv[j]] = True
                        counts_now[i] += 1
                informed_counts[i, r] = counts_now[i]
        else:
            for i in range(S):
                informed_counts[i, r] = counts_now[i]
    return bad, informed_counts


def _reachable_py(
    indptr: np.ndarray,
    indices: np.ndarray,
    eids: np.ndarray,
    caller: int,
    k: int,
    used_words: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Level-synchronous bounded BFS over CSR adjacency.

    Sentinels match :mod:`repro.engine.kernels` (-2 unreached, -1 root);
    the frontier is the just-appended ``order`` slice and neighbours
    expand in CSR (ascending) order, so parents match the legacy FIFO
    BFS exactly.  ``used_words`` is the used-edge bitmask as little-
    endian ``uint64`` words.
    """
    n = indptr.shape[0] - 1
    parent = np.full(n, -2, dtype=np.int64)
    depth = np.zeros(n, dtype=np.int64)
    order = np.empty(n, dtype=np.int64)
    parent[caller] = -1
    order[0] = caller
    n_order = 1
    lo = 0
    hi = 1
    d = 0
    while lo < hi and d < k:
        d += 1
        for qi in range(lo, hi):
            u = order[qi]
            for p in range(indptr[u], indptr[u + 1]):
                v = indices[p]
                if parent[v] != -2:
                    continue
                e = eids[p]
                if (used_words[e >> 6] >> np.uint64(e & 63)) & np.uint64(1):
                    continue
                parent[v] = u
                depth[v] = d
                order[n_order] = v
                n_order += 1
        lo = hi
        hi = n_order
    return parent, depth, order[:n_order]


# -- implementation selection (once, at import) -----------------------------

_screen_counts_k: Callable[..., Any] = _screen_counts_py
_batch_rounds_k: Callable[..., Any] = _batch_rounds_py
_reachable_k: Callable[..., Any] = _reachable_py

_FORCED: bool | None = None


def _try_compile() -> bool:
    """Compile + warm the kernels; False leaves the NumPy paths active."""
    global _screen_counts_k, _batch_rounds_k, _reachable_k
    if os.environ.get("REPRO_NATIVE", "1").strip() == "0":
        return False
    try:
        from numba import njit
    except Exception:  # repro-lint: disable=RL010 (optional-dependency probe: any numba import failure means "no native", never a fault to retry)
        return False
    try:
        sc = njit(cache=True, nogil=True)(_screen_counts_py)
        br = njit(cache=True, nogil=True)(_batch_rounds_py)
        rc = njit(cache=True, nogil=True)(_reachable_py)
        # Warm each signature on a 2-vertex/1-edge toy so compile errors
        # surface here (and degrade to fallback) instead of mid-campaign.
        one = np.ones(1, dtype=np.int64)
        zero2 = np.array([0, 1], dtype=np.int64)
        sc(0, 2, one, one, zero2, np.zeros(1, np.int64), one, one.copy(), True)
        br(
            np.array([0, 1], np.int64),
            np.array([0, 1], np.int64),
            np.zeros(1, np.int64),
            np.array([2], np.int64),
            np.array([[0, 1]], np.int64),
            np.array([[1]], np.int64),
            np.array([[True, False]]),
            True,
        )
        rc(
            np.array([0, 1, 2], np.int64),
            np.array([1, 0], np.int64),
            np.zeros(2, np.int64),
            0,
            1,
            np.zeros(1, np.uint64),
        )
    except Exception:  # repro-lint: disable=RL010 (compile/warm failure of any kind degrades to the NumPy fallback paths; nothing is swallowed silently — NATIVE_COMPILED records it)
        return False
    _screen_counts_k, _batch_rounds_k, _reachable_k = sc, br, rc
    return True


NATIVE_COMPILED = _try_compile()


def native_enabled() -> bool:
    """Should call sites route through the facade kernels?

    True when numba compiled the kernels at import (and ``REPRO_NATIVE``
    did not veto), or when a test forced the facade on.
    """
    if _FORCED is not None:
        return _FORCED
    return NATIVE_COMPILED


def _set_enabled_for_testing(flag: bool | None) -> None:
    """Force the facade on/off (``None`` restores import-time selection).

    Forcing on without numba runs the ``*_py`` implementations — slow,
    but byte-identical, which is exactly what the identity tests need.
    """
    global _FORCED
    _FORCED = flag


# -- wrappers (the API the call sites use) ----------------------------------


def mask_to_words(mask: int, n_bits: int) -> np.ndarray:
    """An arbitrary-precision int bitmask as little-endian uint64 words."""
    n_words = max(1, (n_bits + 63) // 64)
    return np.frombuffer(mask.to_bytes(n_words * 8, "little"), dtype=np.uint64)


def screen_counts(
    source: int,
    n: int,
    counts: np.ndarray,
    lengths: np.ndarray,
    flat: np.ndarray,
    sources: np.ndarray,
    receivers: np.ndarray,
    keys: np.ndarray,
    vertex_disjoint: bool,
) -> np.ndarray | None:
    """Facade twin of ``FastValidator._screen_counts`` (None = round
    loop decides)."""
    ok, out = _screen_counts_k(
        int(source),
        int(n),
        np.ascontiguousarray(counts),
        np.ascontiguousarray(lengths),
        np.ascontiguousarray(flat),
        np.ascontiguousarray(sources),
        np.ascontiguousarray(receivers),
        np.ascontiguousarray(keys),
        bool(vertex_disjoint),
    )
    return out if ok else None


def batch_rounds(
    call_bounds: np.ndarray,
    edge_bounds: np.ndarray,
    path_starts: np.ndarray,
    path_ends: np.ndarray,
    flat: np.ndarray,
    keys: np.ndarray,
    informed: np.ndarray,
    vertex_disjoint: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Facade twin of the batch validator's per-round sweep; mutates
    ``informed`` rows in place and returns ``(bad, informed_counts)``."""
    return _batch_rounds_k(
        np.ascontiguousarray(call_bounds),
        np.ascontiguousarray(edge_bounds),
        np.ascontiguousarray(path_starts),
        np.ascontiguousarray(path_ends),
        np.ascontiguousarray(flat),
        np.ascontiguousarray(keys),
        informed,
        bool(vertex_disjoint),
    )


def reachable(
    indptr: np.ndarray,
    indices: np.ndarray,
    eids: np.ndarray,
    caller: int,
    k: int,
    used_mask: int,
    n_edges: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Facade twin of ``GraphKernels.reachable`` over CSR arrays."""
    words = mask_to_words(used_mask, n_edges)
    return _reachable_k(indptr, indices, eids, int(caller), int(k), words)
