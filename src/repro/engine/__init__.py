"""The shared scheduling engine.

:mod:`repro.engine.kernels` holds the CSR-native compute kernels every
registered scheduler is a thin strategy over: bounded-depth reachability,
bounded-length simple-path enumeration, uninformed-component labeling with
boundary counts, and the doubling/capacity prunes — all on integer-bitmask
state shared with :mod:`repro.model.validator_fast`.
"""

from repro.engine.kernels import (
    OVERFLOW_PENALTY,
    ComponentSummary,
    GraphKernels,
    PenaltyState,
)

__all__ = [
    "GraphKernels",
    "ComponentSummary",
    "PenaltyState",
    "OVERFLOW_PENALTY",
]
