"""The shared scheduling engine.

:mod:`repro.engine.kernels` holds the CSR-native compute kernels every
registered scheduler is a thin strategy over: bounded-depth reachability,
bounded-length simple-path enumeration, uninformed-component labeling with
boundary counts, and the doubling/capacity prunes — all on integer-bitmask
state shared with :mod:`repro.model.validator_fast`.

:mod:`repro.engine.batch` is the batch all-sources layer: coset-translated
schedule generation over the construction's XOR-translation group, and
stacked-array Definition-1 validation (:class:`BatchValidator`) for whole
schedule batches at once.

:mod:`repro.engine.cache` is the process-wide kernel cache: one
``GraphKernels`` / ``FastValidator`` / ``BatchValidator`` per frozen
graph, shared by the schedulers, the simulator, and the experiments.
"""

from repro.engine.batch import (
    AllSourcesOutcome,
    BatchReport,
    BatchValidator,
    ScheduleLayout,
    StackedSchedules,
    all_sources_schedules,
    stack_schedules,
    translation_group,
    validate_all_sources,
)
from repro.engine.cache import (
    batch_validator_for,
    cache_info,
    clear_cache,
    fast_validator_for,
    kernels_for,
)
from repro.engine.kernels import (
    OVERFLOW_PENALTY,
    ComponentSummary,
    GraphKernels,
    PenaltyState,
)
from repro.engine.native import native_enabled

__all__ = [
    "native_enabled",
    "GraphKernels",
    "ComponentSummary",
    "PenaltyState",
    "OVERFLOW_PENALTY",
    "ScheduleLayout",
    "StackedSchedules",
    "BatchReport",
    "BatchValidator",
    "AllSourcesOutcome",
    "translation_group",
    "all_sources_schedules",
    "stack_schedules",
    "validate_all_sources",
    "kernels_for",
    "fast_validator_for",
    "batch_validator_for",
    "cache_info",
    "clear_cache",
]
