"""Process-wide per-graph kernel cache.

``GraphKernels`` and ``FastValidator`` construction each pay an O(N + E)
setup cost (CSR materialization, edge-key sorting, flat adjacency
tuples).  Before this cache every scheduler call, every experiment, and
the simulator rebuilt them from the same frozen graph; now the first
caller builds, everyone else shares:

    kern = kernels_for(graph)          # GraphKernels, built once per graph
    fv = fast_validator_for(graph)     # FastValidator, likewise
    bv = batch_validator_for(graph)    # BatchValidator sharing fv's keys

Keying: the cache slot is attached to the frozen graph object itself
(``graph._repro_engine_cache``), so entries are keyed on **identity** and
live exactly as long as the graph — no global strong reference ever pins
a graph or its kernels, and a recycled ``id()`` can never alias an old
entry.  Identity (not structural hash) is deliberate: ``Graph.__hash__``
walks the whole edge set per call, and the repository's graphs are built
once and passed around, so identity is both cheap and correct.  A weak
registry tracks live entries for :func:`cache_info` / :func:`clear_cache`.
Unfrozen graphs are mutable and therefore **never cached** — callers get
a fresh object each time.

All cached objects are safe to share: their methods are stateless with
callers threading bitmask state through (see :mod:`repro.engine.kernels`).
Each process has its own cache; ``multiprocessing`` fan-out in the
experiment runner warms one per worker.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, TypeVar, cast

from repro.engine.kernels import GraphKernels
from repro.graphs.base import Graph
from repro.model.validator_fast import FastValidator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cache ↔ batch)
    from repro.engine.batch import BatchValidator

_T = TypeVar("_T")

__all__ = [
    "kernels_for",
    "fast_validator_for",
    "batch_validator_for",
    "cache_info",
    "clear_cache",
]

_SLOT_ATTR = "_repro_engine_cache"

# Weak registry of graphs holding a cache slot, keyed by id() so lookup
# is by identity — Graph's own __eq__/__hash__ compare structure, which
# would wrongly merge equal-but-distinct graphs in a WeakSet.  Values are
# weak: the registry never keeps a graph alive, and a dead entry drops
# out before its id can be recycled into a false positive.
_LIVE: "weakref.WeakValueDictionary[int, Graph]" = weakref.WeakValueDictionary()

_FINALIZER_ATTR = "_repro_engine_finalizer"


@dataclass
class _Stats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    uncached: int = 0


_STATS = _Stats()


def _count_eviction(stats: _Stats = _STATS) -> None:
    # Default-arg binding: at interpreter shutdown module globals are
    # cleared to None before late finalizers run.
    stats.evictions += 1


def _slot(graph: Graph) -> dict[str, object] | None:
    """The per-graph entry dict, or None when the graph is uncacheable."""
    if not isinstance(graph, Graph) or not graph.frozen:
        return None
    slot = cast("dict[str, object] | None", getattr(graph, _SLOT_ATTR, None))
    if slot is None:
        slot = {}
        setattr(graph, _SLOT_ATTR, slot)
        _LIVE[id(graph)] = graph
        # One eviction-counting finalizer per graph, surviving clear_cache
        # (which detaches the slot but not this marker).
        if getattr(graph, _FINALIZER_ATTR, None) is None:
            setattr(graph, _FINALIZER_ATTR, weakref.finalize(graph, _count_eviction))
    return slot


def _get(graph: Graph, key: str, build: Callable[[], _T]) -> _T:
    slot = _slot(graph)
    if slot is None:
        _STATS.uncached += 1
        return build()
    cached = slot.get(key)
    if cached is not None:
        _STATS.hits += 1
        return cast(_T, cached)
    _STATS.misses += 1
    built = build()
    slot[key] = built
    return built


def kernels_for(graph: Graph) -> GraphKernels:
    """The process-wide :class:`GraphKernels` for a frozen graph."""
    return _get(graph, "kernels", lambda: GraphKernels(graph))


def fast_validator_for(graph: Graph) -> FastValidator:
    """The process-wide :class:`FastValidator` for a frozen graph."""
    return _get(graph, "fast", lambda: FastValidator(graph))


def batch_validator_for(graph: Graph) -> "BatchValidator":
    """The process-wide batch validator, sharing the fast validator's
    edge-key array."""
    from repro.engine.batch import BatchValidator

    return _get(
        graph, "batch", lambda: BatchValidator(graph, fast=fast_validator_for(graph))
    )


def cache_info() -> dict[str, int]:
    """Counters plus the live entry count (for tests and diagnostics)."""
    return {
        "entries": len(_LIVE),
        "hits": _STATS.hits,
        "misses": _STATS.misses,
        "evictions": _STATS.evictions,
        "uncached": _STATS.uncached,
    }


def clear_cache() -> int:
    """Detach every live entry (kept objects stay alive for existing
    holders); returns the number of entries removed.  Counters reset."""
    graphs = list(_LIVE.values())
    for graph in graphs:
        if hasattr(graph, _SLOT_ATTR):
            delattr(graph, _SLOT_ATTR)
        _LIVE.pop(id(graph), None)
    _STATS.hits = _STATS.misses = _STATS.evictions = _STATS.uncached = 0
    return len(graphs)
