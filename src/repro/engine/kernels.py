"""CSR-native scheduling kernels shared by every registered scheduler.

This module is the scheduling engine's compute layer.  Where the legacy
schedulers (kept verbatim in :mod:`repro.schedulers.legacy`) privately
reimplemented bounded-path enumeration and the component-capacity prune
over Python sets — re-sorting neighbour sets on every visit, flood-filling
the whole graph once *per candidate target* — the kernels here work off a
:class:`GraphKernels` object built once per graph:

* adjacency comes from the graph's CSR arrays (``Graph.csr_arrays``),
  materialized once into flat per-vertex neighbour/edge-id tuples, so the
  inner loops never touch a ``frozenset`` or call ``sorted``;
* vertex sets (informed, claimed, visited) and used-edge sets are
  arbitrary-precision integer bitmasks — the same representation as
  :mod:`repro.model.validator_fast` and the bitmask helpers in
  :mod:`repro.util.bits` — so the kernels, the fast validator, and the
  exact search's memo table share one state encoding;
* the component-capacity machinery (``|C| ≤ b(C)·(2^r − 1)``) is computed
  *incrementally* by :class:`PenaltyState`: informing a vertex only splits
  its own uninformed component, so a candidate probe relabels that one
  component instead of re-scanning the graph.

Equivalence with the legacy helpers is pinned by unit and property tests
(``tests/engine``, ``tests/property/test_engine_property.py``): path
enumeration and reachability return identical output, component summaries
and capacity verdicts match exactly, and penalties match up to float
summation order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine import native
from repro.graphs.base import Graph
from repro.types import InvalidParameterError, canonical_edge

__all__ = [
    "GraphKernels",
    "ComponentSummary",
    "PenaltyState",
    "OVERFLOW_PENALTY",
    "UNREACHED",
]

# Weight of one unit of component-capacity overflow in the greedy scorer;
# any overflow dwarfs every soft (slack-shaping) term.
OVERFLOW_PENALTY = 1000.0

# Parent-array sentinels of GraphKernels.reachable: UNREACHED marks a
# vertex the bounded BFS never discovered (callers filter on it).
UNREACHED = -2
_ROOT = -1


@dataclass
class ComponentSummary:
    """Connected components of the uninformed subgraph.

    ``labels[v]`` is the component id of uninformed vertex ``v`` and -1
    for informed vertices; ``sizes[c]`` / ``boundaries[c]`` are the
    component's vertex count and its number of *distinct* informed
    boundary vertices (the b(C) of the capacity bound).
    """

    labels: np.ndarray
    sizes: list[int]
    boundaries: list[int]

    @property
    def n_components(self) -> int:
        return len(self.sizes)

    def members(self, label: int) -> np.ndarray:
        return np.flatnonzero(self.labels == label)


def _penalty_term(size: int, boundary: int, cap_mult: int) -> float:
    """One component's contribution to the capacity penalty.

    Overflow beyond ``b(C)·(2^r − 1)`` is charged at :data:`OVERFLOW_PENALTY`
    per vertex; feasible components pay the convex slack term ``|C|²/cap``
    (prefers balanced splits — see the greedy module's rationale).
    """
    capacity = boundary * cap_mult
    if size > capacity:
        return OVERFLOW_PENALTY * (size - capacity)
    if capacity > 0:
        return size * size / capacity
    return 0.0


class GraphKernels:
    """Per-graph kernel context: CSR-derived adjacency plus edge ids.

    Construction is a one-time cost (reused across restarts, rounds, and
    many schedules on the same graph); every method is stateless with the
    caller threading informed/used bitmasks through.
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        n = self.n = graph.n_vertices
        indptr, indices = graph.csr_arrays()
        self.indptr, self.indices = indptr, indices
        row = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        keys = np.minimum(row, indices) * n + np.maximum(row, indices)
        # Canonical (u < v) edge ids in sorted-key order — one id per
        # undirected edge, shared by both CSR directions.
        self.edge_keys = np.unique(keys)
        self.n_edges = int(self.edge_keys.size)
        slot_edge = np.searchsorted(self.edge_keys, keys)
        # CSR-aligned edge ids, kept as a flat array for the compiled
        # reachability kernel (repro.engine.native).
        self._eids_flat = slot_edge
        # Flat Python adjacency: per-vertex neighbour and edge-id tuples in
        # ascending neighbour order.  Int tuples iterate far faster than
        # NumPy scalars or re-sorted sets in the DFS/BFS inner loops.
        self.nbrs: list[tuple[int, ...]] = []
        self.eids: list[tuple[int, ...]] = []
        for u in range(n):
            lo, hi = int(indptr[u]), int(indptr[u + 1])
            self.nbrs.append(tuple(int(x) for x in indices[lo:hi]))
            self.eids.append(tuple(int(x) for x in slot_edge[lo:hi]))
        self.full_mask = (1 << n) - 1
        self._edge_id_of: dict[tuple[int, int], int] | None = None

    # -- edge ids -----------------------------------------------------------

    def edge_id(self, u: int, v: int) -> int:
        """The canonical edge id of ``{u, v}`` (KeyError if absent)."""
        if self._edge_id_of is None:
            self._edge_id_of = {}
            for x in range(self.n):
                for y, e in zip(self.nbrs[x], self.eids[x]):
                    if x < y:
                        self._edge_id_of[(x, y)] = e
        return self._edge_id_of[canonical_edge(u, v)]

    def path_edges_mask(self, path: tuple[int, ...]) -> int:
        """Bitmask (over edge ids) of the edges traversed by ``path``."""
        mask = 0
        for a, b in zip(path, path[1:]):
            mask |= 1 << self.edge_id(a, b)
        return mask

    # -- bounded-depth reachability ----------------------------------------

    def reachable(
        self, caller: int, k: int, used_mask: int
    ) -> tuple[list[int], list[int], list[int]]:
        """BFS from ``caller`` over unused edges, depth-limited to ``k``.

        Returns ``(parent, depth, order)``: ``parent[v]`` is the BFS
        predecessor (-1 at the caller, :data:`UNREACHED` otherwise),
        ``depth[v]`` the
        hop count, and ``order`` the discovery order including the caller.
        Level-synchronous with ascending-neighbour expansion, so parents
        match the legacy FIFO BFS exactly.
        """
        n = self.n
        if native.native_enabled():
            # Compiled CSR BFS (numba, REPRO_NATIVE-gated): same level
            # order, same ascending-neighbour expansion, same sentinels.
            p_arr, d_arr, o_arr = native.reachable(
                self.indptr,
                self.indices,
                self._eids_flat,
                caller,
                k,
                used_mask,
                self.n_edges,
            )
            return p_arr.tolist(), d_arr.tolist(), o_arr.tolist()
        parent = [UNREACHED] * n
        depth = [0] * n
        parent[caller] = _ROOT
        order = [caller]
        frontier = [caller]
        d = 0
        nbrs, eids = self.nbrs, self.eids
        while frontier and d < k:
            d += 1
            nxt: list[int] = []
            for u in frontier:
                for v, e in zip(nbrs[u], eids[u]):
                    if parent[v] != UNREACHED or (used_mask >> e) & 1:
                        continue
                    parent[v] = u
                    depth[v] = d
                    nxt.append(v)
            order.extend(nxt)
            frontier = nxt
        return parent, depth, order

    def path_to(self, parent: list[int], v: int) -> tuple[int, ...]:
        """The BFS path to ``v`` implied by a ``reachable`` parent array."""
        path = [v]
        while parent[path[-1]] != _ROOT:
            path.append(parent[path[-1]])
        return tuple(reversed(path))

    def reachable_paths(
        self, caller: int, k: int, used_mask: int
    ) -> dict[int, tuple[int, ...]]:
        """Drop-in equivalent of the legacy ``_reachable_paths``: one
        shortest free path per vertex reachable within ``k`` unused edges,
        keyed by target, in discovery order."""
        parent, _depth, order = self.reachable(caller, k, used_mask)
        return {v: self.path_to(parent, v) for v in order[1:]}

    # -- bounded-length simple-path enumeration ----------------------------

    def enumerate_paths(
        self, caller: int, k: int, used_mask: int, targets_mask: int
    ) -> list[tuple[int, ...]]:
        """All simple paths of length ≤ k from ``caller`` over unused
        edges ending at a target bit of ``targets_mask``, sorted shorter
        first then lexicographic — identical output to the legacy
        ``_enumerate_paths`` / ``_paths_from``."""
        out: list[tuple[int, ...]] = []
        nbrs, eids = self.nbrs, self.eids
        path = [caller]

        def dfs(u: int, visited: int, used: int) -> None:
            if len(path) > 1 and (targets_mask >> u) & 1:
                out.append(tuple(path))
            if len(path) - 1 == k:
                return
            for v, e in zip(nbrs[u], eids[u]):
                if (visited >> v) & 1 or (used >> e) & 1:
                    continue
                path.append(v)
                dfs(v, visited | (1 << v), used | (1 << e))
                path.pop()

        dfs(caller, 1 << caller, used_mask)
        out.sort(key=lambda p: (len(p), p))
        return out

    # -- uninformed components and capacity prunes -------------------------

    def components(self, informed_mask: int) -> ComponentSummary:
        """Label the connected components of the uninformed subgraph and
        count each one's distinct informed boundary vertices.

        Seeds are scanned in ascending vertex order, so component ids (and
        any float summation over them) follow the legacy scan order.
        """
        n = self.n
        labels = np.full(n, -1, dtype=np.int64)
        sizes: list[int] = []
        boundaries: list[int] = []
        nbrs = self.nbrs
        for v in range(n):
            if (informed_mask >> v) & 1 or labels[v] >= 0:
                continue
            label = len(sizes)
            labels[v] = label
            stack = [v]
            size = 0
            bmask = 0
            while stack:
                x = stack.pop()
                size += 1
                for y in nbrs[x]:
                    if (informed_mask >> y) & 1:
                        bmask |= 1 << y
                    elif labels[y] < 0:
                        labels[y] = label
                        stack.append(y)
            sizes.append(size)
            boundaries.append(bmask.bit_count())
        return ComponentSummary(labels=labels, sizes=sizes, boundaries=boundaries)

    def component_penalty(self, informed_mask: int, rounds_left: int) -> float:
        """Σ over uninformed components of capacity overflow plus slack —
        the legacy ``_component_penalty`` on bitmask state."""
        if rounds_left < 0:
            return float("inf")
        cap_mult = (1 << rounds_left) - 1 if rounds_left > 0 else 0
        summary = self.components(informed_mask)
        return sum(
            _penalty_term(s, b, cap_mult)
            for s, b in zip(summary.sizes, summary.boundaries)
        )

    def capacity_ok(self, informed_mask: int, rounds_left: int) -> bool:
        """The exact searcher's two sound prunes: global doubling
        ``|U| ≤ |I|·(2^r − 1)`` and the per-component capacity bound."""
        n_informed = informed_mask.bit_count()
        u_count = self.n - n_informed
        if u_count == 0:
            return True
        if rounds_left <= 0:
            return False
        cap = (1 << rounds_left) - 1
        if u_count > n_informed * cap:
            return False
        summary = self.components(informed_mask)
        return all(s <= b * cap for s, b in zip(summary.sizes, summary.boundaries))


class PenaltyState:
    """Incrementally-maintained component penalty for one greedy round.

    Informing an uninformed vertex ``v`` only affects ``v``'s own
    component (it splits into the pieces reachable from ``v``'s uninformed
    neighbours; every other component and boundary is untouched), so a
    candidate **probe** flood-fills one component instead of the whole
    graph — the asymptotic win over the legacy scorer, which re-labelled
    all of G for every sampled candidate.

    ``probe(v)`` returns the penalty of ``informed ∪ {v}``;
    ``commit(v)`` makes that hypothetical permanent.
    """

    def __init__(
        self,
        kernels: GraphKernels,
        informed_mask: int,
        rounds_left: int,
        *,
        summary: ComponentSummary | None = None,
    ) -> None:
        if rounds_left < 0:
            raise InvalidParameterError(f"rounds_left must be >= 0, got {rounds_left}")
        self.kernels = kernels
        self.informed = informed_mask
        self.cap_mult = (1 << rounds_left) - 1 if rounds_left > 0 else 0
        if summary is None:
            summary = kernels.components(informed_mask)
        # The caller may keep reading its summary; labels are mutated on
        # commit, so take an independent copy.
        self.labels = summary.labels.copy()
        self._terms: list[float] = [
            _penalty_term(s, b, self.cap_mult)
            for s, b in zip(summary.sizes, summary.boundaries)
        ]
        self.total = float(sum(self._terms))

    def _split(self, v: int) -> tuple[float, list[tuple[int, int, list[int]]]]:
        """Penalty terms of the pieces ``v``'s component splits into when
        ``v`` becomes informed.  Returns ``(terms_sum, pieces)`` with each
        piece's ``(size, boundary_count, members)``."""
        labels = self.labels
        label = int(labels[v])
        informed_v = self.informed | (1 << v)
        nbrs = self.kernels.nbrs
        visited = 1 << v
        terms = 0.0
        pieces: list[tuple[int, int, list[int]]] = []
        for s0 in nbrs[v]:
            if labels[s0] != label or (visited >> s0) & 1:
                continue
            visited |= 1 << s0
            members = [s0]
            stack = [s0]
            bmask = 0
            while stack:
                x = stack.pop()
                for y in nbrs[x]:
                    if (informed_v >> y) & 1:
                        bmask |= 1 << y
                    elif not (visited >> y) & 1:
                        visited |= 1 << y
                        members.append(y)
                        stack.append(y)
            size = len(members)
            boundary = bmask.bit_count()
            terms += _penalty_term(size, boundary, self.cap_mult)
            pieces.append((size, boundary, members))
        return terms, pieces

    def probe(self, v: int) -> float:
        """The penalty of ``informed ∪ {v}`` (``v`` must be uninformed)."""
        label = int(self.labels[v])
        new_terms, _pieces = self._split(v)
        return self.total - self._terms[label] + new_terms

    def commit(self, v: int) -> None:
        """Inform ``v``: split its component and update labels/terms."""
        label = int(self.labels[v])
        _terms, pieces = self._split(v)
        self.informed |= 1 << v
        self.total -= self._terms[label]
        self._terms[label] = 0.0
        self.labels[v] = -1
        for size, boundary, members in pieces:
            new_label = len(self._terms)
            term = _penalty_term(size, boundary, self.cap_mult)
            self._terms.append(term)
            self.total += term
            for m in members:
                self.labels[m] = new_label
