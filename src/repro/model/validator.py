"""Schedule validation against Definition 1 (k-line communication).

The validator is the repository's source of truth: *nothing* produced by
the constructions or schedulers is trusted by construction.  Theorem 4
("Broadcast_2 is a minimum-time 2-line broadcast scheme") and Theorem 6
(the Broadcast_k analogue) are machine-checked by running the scheme and
validating the result here, for every (or a sampled set of) source(s).

Checked conditions, per round:

  V1. every call's path is a real path of the graph;
  V2. every call has length between 1 and k;
  V3. the calling vertex is informed when it calls;
  V4. no vertex places more than one call in a round (Definition 1(2));
  V5. no two calls in a round share an edge (Definition 1(3));
  V6. no two calls in a round share a receiver (Definition 1(3)),
      and no receiver is already informed (broadcast usefulness);

and globally:

  V7. after the last round every vertex is informed;
  V8. the round count equals ⌈log₂ N⌉ (Definition 2, "minimum time"),
      when ``require_minimum_time`` is set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.graphs.base import Graph
from repro.types import Edge, InvalidScheduleError, Round, Schedule

__all__ = [
    "ValidationReport",
    "validate_round",
    "validate_broadcast",
    "assert_valid_broadcast",
    "minimum_broadcast_rounds",
    "verify_k_mlbg_via_scheme",
]


def minimum_broadcast_rounds(n_vertices: int) -> int:
    """⌈log₂ N⌉ — the information-theoretic lower bound on broadcast time."""
    if n_vertices < 1:
        raise InvalidScheduleError(f"graph must have vertices, got {n_vertices}")
    return math.ceil(math.log2(n_vertices)) if n_vertices > 1 else 0


@dataclass
class ValidationReport:
    """Outcome of validating a schedule."""

    ok: bool
    errors: list[str] = field(default_factory=list)
    rounds: int = 0
    informed_per_round: list[int] = field(default_factory=list)
    max_call_length: int = 0

    def raise_if_invalid(self) -> None:
        if not self.ok:
            raise InvalidScheduleError(
                "; ".join(self.errors[:10])
                + (f" (+{len(self.errors) - 10} more)" if len(self.errors) > 10 else "")
            )


def validate_round(
    graph: Graph,
    rnd: Round,
    informed: set[int],
    k: int,
    *,
    round_index: int = 0,
    vertex_disjoint: bool = False,
) -> list[str]:
    """Check conditions V1–V6 for one round; returns error strings.

    ``vertex_disjoint=True`` additionally enforces the stricter variant the
    paper's Section 5 proposes as future work: simultaneous calls must not
    share *any* vertex (so no switching through a common intermediate).
    """
    errors: list[str] = []
    used_edges: set[Edge] = set()
    used_vertices: set[int] = set()
    receivers: set[int] = set()
    callers: set[int] = set()
    for call in rnd:
        tag = f"round {round_index}, call {call.source}->{call.receiver}"
        if not graph.path_is_valid(call.path):
            errors.append(f"{tag}: path {call.path} is not a path of the graph")
            continue
        if call.length > k:
            errors.append(f"{tag}: length {call.length} exceeds k={k}")
        if call.source not in informed:
            errors.append(f"{tag}: caller is not informed")
        if call.source in callers:
            errors.append(f"{tag}: vertex {call.source} places a second call")
        callers.add(call.source)
        if call.receiver in receivers:
            errors.append(f"{tag}: receiver already targeted this round")
        if call.receiver in informed:
            errors.append(f"{tag}: receiver already informed")
        receivers.add(call.receiver)
        for e in call.edges():
            if e in used_edges:
                errors.append(f"{tag}: edge {e} used by another call this round")
            used_edges.add(e)
        if vertex_disjoint:
            overlap = used_vertices.intersection(call.path)
            if overlap:
                errors.append(
                    f"{tag}: vertices {sorted(overlap)} shared with another "
                    f"call (vertex-disjoint mode)"
                )
            used_vertices.update(call.path)
    return errors


def validate_broadcast(
    graph: Graph,
    schedule: Schedule,
    k: int,
    *,
    require_minimum_time: bool = True,
    vertex_disjoint: bool = False,
) -> ValidationReport:
    """Check V1–V8 for a complete broadcast schedule.

    ``vertex_disjoint=True`` checks the Section-5 vertex-disjoint variant
    of the model (see :func:`validate_round`).  Accepts a columnar
    :class:`~repro.frame.ScheduleFrame` as well — the reference path
    materializes the object view and walks it call by call (that
    legibility is the point of the oracle; array-speed lives in
    :mod:`repro.model.validator_fast` and :mod:`repro.engine.batch`).
    """
    if not hasattr(schedule, "rounds"):  # a ScheduleFrame
        from repro.frame import as_schedule

        schedule = as_schedule(schedule)
    report = ValidationReport(ok=True, rounds=len(schedule.rounds))
    if not (0 <= schedule.source < graph.n_vertices):
        report.errors.append(f"source {schedule.source} not a vertex")
        report.ok = False
        return report
    informed = {schedule.source}
    max_len = 0
    for idx, rnd in enumerate(schedule.rounds, start=1):
        errs = validate_round(
            graph, rnd, informed, k, round_index=idx, vertex_disjoint=vertex_disjoint
        )
        report.errors.extend(errs)
        for call in rnd:
            informed.add(call.receiver)
            max_len = max(max_len, call.length)
        report.informed_per_round.append(len(informed))
    report.max_call_length = max_len
    if len(informed) != graph.n_vertices:
        report.errors.append(
            f"broadcast incomplete: {len(informed)} of {graph.n_vertices} informed"
        )
    if require_minimum_time:
        need = minimum_broadcast_rounds(graph.n_vertices)
        if len(schedule.rounds) != need:
            report.errors.append(
                f"schedule uses {len(schedule.rounds)} rounds, minimum time is {need}"
            )
    report.ok = not report.errors
    return report


def assert_valid_broadcast(
    graph: Graph, schedule: Schedule, k: int, *, require_minimum_time: bool = True
) -> ValidationReport:
    """Validate and raise :class:`InvalidScheduleError` on failure."""
    report = validate_broadcast(
        graph, schedule, k, require_minimum_time=require_minimum_time
    )
    report.raise_if_invalid()
    return report


def verify_k_mlbg_via_scheme(sh, sources: list[int] | None = None) -> bool:
    """Machine-check Definition 3 for a sparse hypercube via its scheme.

    Runs ``Broadcast_k`` from each source (all of them when ``sources`` is
    None) and validates under call-length bound ``sh.k``.  Returning True
    certifies membership in ``G_k`` *constructively* — this is the
    executable content of Theorems 4 and 6.

    The sweep runs on the batch all-sources engine (coset-translated
    generation + stacked validation).  Per-source verdicts equal the
    reference's by construction (pinned by the property tests), but the
    oracle stays in the loop in both directions: a *positive* answer is
    spot-checked by running a handful of the swept sources through this
    module's reference validator, and every *failing* source is re-checked
    against the reference before the sweep is allowed to answer False.
    """
    from repro.core.broadcast import broadcast_schedule
    from repro.engine.batch import validate_all_sources

    outcome = validate_all_sources(sh, k=sh.k, sources=sources)
    graph = sh.graph
    if outcome.all_ok:
        swept = outcome.sources
        if not swept:
            return True
        spots = {swept[0], swept[len(swept) // 2], swept[-1]}
        return all(
            validate_broadcast(graph, broadcast_schedule(sh, s), sh.k).ok
            for s in spots
        )
    for s, ok in zip(outcome.sources, outcome.ok):
        if not ok:
            schedule = broadcast_schedule(sh, s)
            if not validate_broadcast(graph, schedule, sh.k).ok:
                return False
    return True
