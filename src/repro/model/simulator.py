"""A stateful executor for k-line communication schedules.

Where the validator answers "is this schedule legal?", the simulator
answers "what happens when it runs?" — it advances round by round,
*rejects* infeasible calls exactly as Definition 1 prescribes (a call
fails if it would share an edge or a receiver with an earlier call of the
same round), and records statistics.

It also implements the paper's Section-5 future-work extension: a per-edge
**bandwidth** ``b ≥ 1``, allowing up to ``b`` simultaneous calls per edge
(dilated-network style).  ``bandwidth=1`` is exactly the model of
Definition 1; experiment E15 studies how much schedule infeasibility a
bandwidth of 2 or 4 absorbs on deliberately-conflicting workloads.

Failure semantics are configurable: ``strict=True`` (default) raises on
the first rejected call — the mode used to machine-check Theorems 4/6 —
while ``strict=False`` records the rejection and carries on, the mode used
by the congestion experiments.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.graphs.base import Graph
from repro.types import (
    Call,
    InvalidScheduleError,
    Round,
    Schedule,
)

__all__ = ["LineNetworkSimulator", "SimulationResult", "RejectedCall"]


@dataclass(frozen=True)
class RejectedCall:
    """A call the simulator refused, with the Definition-1 clause violated."""

    round_index: int
    call: Call
    reason: str


@dataclass
class SimulationResult:
    """Statistics collected by a full simulation run."""

    source: int
    rounds_executed: int
    informed: set[int]
    informed_per_round: list[int]
    call_length_histogram: dict[int, int]
    edge_load_total: Counter
    max_edge_load_per_round: list[int]
    rejected: list[RejectedCall] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return bool(self.informed)  # overwritten by simulator property below

    def doubling_profile(self) -> list[float]:
        """Ratio of informed counts between consecutive rounds (ideal: 2.0
        until saturation) — the paper's 'informed vertices at most double'
        argument, measured."""
        counts = [1] + self.informed_per_round
        return [b / a for a, b in zip(counts, counts[1:])]


class LineNetworkSimulator:
    """Round-by-round executor of k-line schedules on a fixed graph."""

    def __init__(
        self,
        graph: Graph,
        k: int,
        *,
        bandwidth: int = 1,
        strict: bool = True,
    ) -> None:
        if k < 1:
            raise InvalidScheduleError(f"need k >= 1, got {k}")
        if bandwidth < 1:
            raise InvalidScheduleError(f"need bandwidth >= 1, got {bandwidth}")
        self.graph = graph
        self.k = k
        self.bandwidth = bandwidth
        self.strict = strict
        self._fast_validator = None  # lazy; shared across runs on this graph

    def _fast_report(self, schedule: Schedule):
        """A bitset fast-validator report for ``schedule`` (bandwidth-1
        semantics; the validator's clauses are exactly the ones
        ``execute_round`` enforces per call)."""
        from repro.engine.cache import fast_validator_for

        if self._fast_validator is None:
            self._fast_validator = fast_validator_for(self.graph)
        return self._fast_validator.validate(
            schedule, self.k, require_minimum_time=False
        )

    # -- single-round semantics ------------------------------------------------

    def execute_round(
        self,
        rnd: Round,
        informed: set[int],
        *,
        round_index: int = 0,
    ) -> tuple[list[Call], list[RejectedCall]]:
        """Apply Definition 1 to one round.

        Calls are admitted in order; a call is rejected if it violates any
        clause (path validity, length, caller informed, single call per
        caller, per-edge bandwidth, single reception).  Returns
        ``(accepted, rejected)``; does **not** mutate ``informed``.
        """
        edge_use: Counter = Counter()
        receivers: set[int] = set()
        callers: set[int] = set()
        accepted: list[Call] = []
        rejected: list[RejectedCall] = []

        def reject(call: Call, reason: str) -> None:
            rejected.append(RejectedCall(round_index, call, reason))
            if self.strict:
                raise InvalidScheduleError(
                    f"round {round_index}: call {call.source}->{call.receiver} "
                    f"rejected: {reason}"
                )

        for call in rnd:
            if not self.graph.path_is_valid(call.path):
                reject(call, "path is not a path of the graph")
                continue
            if call.length > self.k:
                reject(call, f"call length {call.length} exceeds k={self.k}")
                continue
            if call.source not in informed:
                reject(call, "caller not informed")
                continue
            if call.source in callers:
                reject(call, "caller already placed a call this round")
                continue
            if call.receiver in receivers:
                reject(call, "receiver already targeted this round")
                continue
            if call.receiver in informed:
                reject(call, "receiver already informed")
                continue
            edges = call.edges()
            if any(edge_use[e] + 1 > self.bandwidth for e in edges):
                reject(call, "edge bandwidth exhausted")
                continue
            for e in edges:
                edge_use[e] += 1
            callers.add(call.source)
            receivers.add(call.receiver)
            accepted.append(call)
        return accepted, rejected

    # -- full-schedule execution -------------------------------------------------

    def run(self, schedule: Schedule) -> SimulationResult:
        """Execute all rounds; returns collected statistics.

        In strict mode an infeasible call raises; otherwise infeasible
        calls are dropped (their receivers stay uninformed) and recorded.
        Accepts a columnar :class:`~repro.frame.ScheduleFrame` too; the
        executor is inherently per-call, so the frame is walked through
        its object view.
        """
        if not hasattr(schedule, "rounds"):  # a ScheduleFrame
            from repro.frame import as_schedule

            schedule = as_schedule(schedule)
        if not (0 <= schedule.source < self.graph.n_vertices):
            raise InvalidScheduleError(f"source {schedule.source} not a vertex")
        informed: set[int] = {schedule.source}
        informed_per_round: list[int] = []
        lengths: Counter = Counter()
        total_load: Counter = Counter()
        max_per_round: list[int] = []
        all_rejected: list[RejectedCall] = []
        for idx, rnd in enumerate(schedule.rounds, start=1):
            accepted, rejected = self.execute_round(rnd, informed, round_index=idx)
            all_rejected.extend(rejected)
            round_load: Counter = Counter()
            for call in accepted:
                informed.add(call.receiver)
                lengths[call.length] += 1
                for e in call.edges():
                    total_load[e] += 1
                    round_load[e] += 1
            informed_per_round.append(len(informed))
            max_per_round.append(max(round_load.values(), default=0))
        return SimulationResult(
            source=schedule.source,
            rounds_executed=len(schedule.rounds),
            informed=informed,
            informed_per_round=informed_per_round,
            call_length_histogram=dict(sorted(lengths.items())),
            edge_load_total=total_load,
            max_edge_load_per_round=max_per_round,
            rejected=all_rejected,
        )

    def broadcast_completes(self, schedule: Schedule) -> bool:
        """True iff the executed schedule informs every vertex.

        Fast path: at bandwidth 1 a schedule the bitset validator accepts
        (completeness included, minimum-time not required) is exactly one
        the simulator would run without a single rejection, so the
        per-call Python walk is skipped — for frames and frame-backed
        schedules that path is purely columnar (no ``Call`` objects).
        Anything the validator flags falls through to :meth:`run` for the
        exact strict/lenient semantics (strict mode still raises on the
        offending call).
        """
        if (
            self.bandwidth == 1
            and 0 <= schedule.source < self.graph.n_vertices
            and self._fast_report(schedule).ok
        ):
            return True
        result = self.run(schedule)
        return len(result.informed) == self.graph.n_vertices
