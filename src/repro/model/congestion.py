"""Edge-congestion accounting (paper, Section 5 / experiment E15).

The paper closes by observing that sparseness concentrates traffic: fewer
edges must carry the same ⌈log₂N⌉-round broadcast, and longer calls occupy
more edges per round.  These helpers quantify that for any schedule:

* per-edge total load (how many calls traverse each edge over the run),
* per-round maximum concurrent load (1 by Definition 1 for valid
  schedules; > 1 measures how much *bandwidth* a relaxed schedule needs),
* the minimum per-edge bandwidth making a given (possibly conflicting)
  schedule feasible — the dilated-network question the paper poses.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.graphs.base import Graph
from repro.types import Edge, Schedule

__all__ = ["CongestionProfile", "congestion_profile", "min_feasible_bandwidth"]


@dataclass
class CongestionProfile:
    """Summary of a schedule's edge usage."""

    total_load: dict[Edge, int]
    per_round_peak: list[int]
    used_edges: int
    graph_edges: int
    total_edge_occupancy: int

    @property
    def peak_concurrency(self) -> int:
        """Maximum simultaneous calls on one edge over all rounds."""
        return max(self.per_round_peak, default=0)

    @property
    def max_total_load(self) -> int:
        return max(self.total_load.values(), default=0)

    @property
    def edge_utilization(self) -> float:
        """Fraction of graph edges carrying at least one call."""
        return self.used_edges / self.graph_edges if self.graph_edges else 0.0

    def load_histogram(self) -> dict[int, int]:
        hist: Counter = Counter(self.total_load.values())
        return dict(sorted(hist.items()))

    def as_row(self) -> dict[str, object]:
        """The profile's headline numbers as JSON scalars (campaign rows,
        CSV export) — deterministic for a given schedule."""
        return {
            "used_edges": self.used_edges,
            "graph_edges": self.graph_edges,
            "edge_utilization": round(self.edge_utilization, 4),
            "peak_concurrency": self.peak_concurrency,
            "max_total_load": self.max_total_load,
            "total_edge_occupancy": self.total_edge_occupancy,
        }


def congestion_profile(graph: Graph, schedule: Schedule) -> CongestionProfile:
    """Edge-load statistics of ``schedule`` on ``graph``.

    Does not validate feasibility; pair with the validator when the
    schedule must also be legal.
    """
    total: Counter = Counter()
    per_round_peak: list[int] = []
    occupancy = 0
    for rnd in schedule.rounds:
        this_round: Counter = Counter()
        for call in rnd:
            for e in call.edges():
                total[e] += 1
                this_round[e] += 1
                occupancy += 1
        per_round_peak.append(max(this_round.values(), default=0))
    return CongestionProfile(
        total_load=dict(total),
        per_round_peak=per_round_peak,
        used_edges=len(total),
        graph_edges=graph.n_edges,
        total_edge_occupancy=occupancy,
    )


def min_feasible_bandwidth(graph: Graph, schedule: Schedule) -> int:
    """Smallest per-edge bandwidth under which every call of the schedule
    is admitted (receiver constraints unchanged).

    For a Definition-1-valid schedule this is 1.  For deliberately
    conflicting schedules (e.g. merging two broadcasts into shared rounds)
    it measures the dilation the paper's Section 5 asks about.
    """
    peak = 0
    for rnd in schedule.rounds:
        this_round: Counter = Counter()
        for call in rnd:
            for e in call.edges():
                this_round[e] += 1
        if this_round:
            peak = max(peak, max(this_round.values()))
    return max(1, peak)
