"""The k-line communication model (paper, Definition 1) as executable code.

``validator``
    Pure checks: does a schedule obey Definition 1 on a given graph with
    call-length bound k, and does it complete a broadcast in minimum time
    (Definitions 2–3)?

``validator_fast``
    The bitset/NumPy fast path for the same checks — identical verdicts
    and error strings (failing rounds re-scanned with the reference), an
    order of magnitude faster on valid schedules.

``simulator``
    A stateful round-by-round executor with statistics (informed counts,
    edge loads, call-length histogram) and the Section-5 *bandwidth-m*
    extension (each edge may carry up to ``bandwidth`` simultaneous calls;
    ``bandwidth=1`` is exactly Definition 1).

``congestion``
    Cross-round edge-load accounting for experiment E15.
"""

from repro.model.congestion import (
    CongestionProfile,
    congestion_profile,
    min_feasible_bandwidth,
)
from repro.model.simulator import LineNetworkSimulator, SimulationResult
from repro.model.validator import (
    ValidationReport,
    assert_valid_broadcast,
    minimum_broadcast_rounds,
    validate_broadcast,
    validate_round,
    verify_k_mlbg_via_scheme,
)
from repro.model.validator_fast import (
    FastValidator,
    classify_error,
    validate_broadcast_fast,
)

__all__ = [
    "ValidationReport",
    "validate_round",
    "validate_broadcast",
    "FastValidator",
    "validate_broadcast_fast",
    "classify_error",
    "assert_valid_broadcast",
    "minimum_broadcast_rounds",
    "verify_k_mlbg_via_scheme",
    "LineNetworkSimulator",
    "SimulationResult",
    "CongestionProfile",
    "congestion_profile",
    "min_feasible_bandwidth",
]
