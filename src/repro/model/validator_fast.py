"""Bitset/NumPy fast path for Definition-1 schedule validation.

The reference validator (:mod:`repro.model.validator`) walks every call
with Python sets and per-edge ``has_edge`` lookups — exact, legible, and
the repository's oracle, but it dominates the runtime of the theorem
sweeps (E01/E09/E12 validate a schedule per source per instance).

:class:`FastValidator` checks the same conditions V1–V8 with set
*aggregates* instead of per-call bookkeeping:

* the whole schedule is flattened once into NumPy arrays (sources,
  receivers, call lengths, traversed edges) — no per-call Python after
  that single pass;
* edge existence (V1) is one batched ``searchsorted`` of every traversed
  edge (keyed ``min·N + max``) against the graph's sorted key array, and
  per-round edge-disjointness (V5) is a sort + adjacent-equality sweep;
* informed / caller / receiver sets are N-bit integer bitmasks —
  "every caller informed" is ``smask & ~informed == 0``, "no duplicate
  receiver" is ``popcount(rmask) == m``, informing a round's receivers
  is ``informed |= rmask``.

The aggregate checks accept a round **iff** the reference accepts it
(they detect a superset of the reference's per-round errors — see the
property tests), so the fast path drops to slow mode only on *failing*
rounds: those are re-scanned with the reference ``validate_round`` to
reproduce the oracle's exact error strings and ordering.  Verdicts,
error lists, and first-error classes are therefore identical by
construction, at vectorized speed on the (overwhelmingly common) valid
schedules.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from itertools import chain

import numpy as np

from repro.frame import ScheduleFrame, as_schedule
from repro.graphs.base import Graph
from repro.model.validator import (
    ValidationReport,
    minimum_broadcast_rounds,
    validate_broadcast,
    validate_round,
)
from repro.types import Schedule

__all__ = [
    "FastValidator",
    "ScheduleLayout",
    "flatten_schedule",
    "flatten_frame",
    "validate_broadcast_fast",
    "classify_error",
    "ERROR_CLASSES",
]

# Coarse error taxonomy shared by the reference and fast validators.
# ``classify_error`` maps a reference error string onto one of these; the
# property tests assert the fast path reports the same verdict and the
# same class for the *first* error.
ERROR_CLASSES = (
    "bad-source",
    "bad-path",
    "over-length",
    "uninformed-caller",
    "duplicate-caller",
    "shared-receiver",
    "receiver-informed",
    "shared-edge",
    "shared-vertex",
    "incomplete",
    "not-minimum-time",
)

_CLASSIFIERS = (
    ("not a vertex", "bad-source"),
    ("is not a path of the graph", "bad-path"),
    ("exceeds k=", "over-length"),
    ("caller is not informed", "uninformed-caller"),
    ("places a second call", "duplicate-caller"),
    ("receiver already targeted", "shared-receiver"),
    ("receiver already informed", "receiver-informed"),
    ("used by another call", "shared-edge"),
    ("shared with another", "shared-vertex"),
    ("broadcast incomplete", "incomplete"),
    ("minimum time is", "not-minimum-time"),
)


def classify_error(message: str) -> str:
    """Map a validator error string to its class in :data:`ERROR_CLASSES`."""
    for needle, cls in _CLASSIFIERS:
        if needle in message:
            return cls
    raise ValueError(f"unclassifiable validator error: {message!r}")


def _rounds_containing(flat_indices: np.ndarray, boundaries: np.ndarray) -> set[int]:
    """Round indices (0-based) owning the given flat item indices, where
    ``boundaries[i]`` is the exclusive end offset of round ``i``."""
    return set(np.searchsorted(boundaries, flat_indices, side="right").tolist())


@dataclass(frozen=True)
class ScheduleLayout:
    """The source-independent shape of a schedule's call arrays.

    Two schedules share a layout iff they have the same per-round call
    counts and the same per-call path lengths, in order — exactly the
    invariant the batch engine's XOR translation preserves.  All index
    arrays address the flattened path-vertex row (length
    :attr:`n_items`):

    * call ``c`` occupies ``flat[path_starts[c]:path_ends[c]]``;
    * round ``r`` owns calls ``call_bounds[r]:call_bounds[r+1]`` and
      edges ``edge_bounds[r]:edge_bounds[r+1]``;
    * edge ``e`` runs ``flat[us_idx[e]]`` – ``flat[vs_idx[e]]``.
    """

    n_rounds: int
    counts: np.ndarray
    lengths: np.ndarray
    path_starts: np.ndarray
    path_ends: np.ndarray
    call_bounds: np.ndarray
    edge_bounds: np.ndarray
    us_idx: np.ndarray
    vs_idx: np.ndarray

    @property
    def n_calls(self) -> int:
        return int(self.lengths.size)

    @property
    def n_items(self) -> int:
        return int(self.lengths.sum()) + self.n_calls

    @property
    def n_edges(self) -> int:
        return int(self.lengths.sum())

    @property
    def max_call_length(self) -> int:
        return int(self.lengths.max()) if self.n_calls else 0

    def key(self) -> bytes:
        """Hashable grouping token: layouts with equal keys stack."""
        return self.counts.tobytes() + b"|" + self.lengths.tobytes()

    @staticmethod
    def from_counts(counts: np.ndarray, lengths: np.ndarray) -> "ScheduleLayout":
        counts = np.asarray(counts, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        path_ends = np.cumsum(lengths + 1)
        path_starts = path_ends - lengths - 1
        call_bounds = np.concatenate(([0], np.cumsum(counts)))
        edge_bounds = np.concatenate(([0], np.cumsum(lengths)))[call_bounds]
        n_items = int(path_ends[-1]) if lengths.size else 0
        item_idx = np.arange(n_items, dtype=np.int64)
        us_idx = np.delete(item_idx, path_ends - 1)
        vs_idx = np.delete(item_idx, path_starts)
        return ScheduleLayout(
            n_rounds=int(counts.size),
            counts=counts,
            lengths=lengths,
            path_starts=path_starts,
            path_ends=path_ends,
            call_bounds=call_bounds,
            edge_bounds=edge_bounds,
            us_idx=us_idx,
            vs_idx=vs_idx,
        )


def flatten_frame(frame: ScheduleFrame) -> tuple[ScheduleLayout, np.ndarray]:
    """A frame's layout plus its flat path-vertex row — no per-call work.

    The layout is pure offset arithmetic over the frame's columnar
    arrays; it is cached on the (frozen) frame, so repeated validation of
    the same frame skips even that.
    """
    layout = getattr(frame, "_layout", None)
    if layout is None:
        layout = ScheduleLayout.from_counts(frame.call_counts(), frame.call_lengths())
        # caching a derived value on the frozen frame, not mutating its
        # schedule content — the idiom frame.py documents for validators
        object.__setattr__(frame, "_layout", layout)  # repro-lint: disable=RL003
    return layout, frame.path_verts


def flatten_schedule(
    schedule: Schedule | ScheduleFrame,
) -> tuple[ScheduleLayout, np.ndarray]:
    """One pass over a schedule: its layout plus the flat path-vertex row.

    Shared by :class:`FastValidator` and the batch engine
    (:mod:`repro.engine.batch`) — one implementation of the index
    arithmetic, two consumers.  Frames (and frame-backed schedules) take
    the columnar shortcut: their layout derives from the offset arrays
    without touching a single ``Call`` object.
    """
    if isinstance(schedule, ScheduleFrame):
        return flatten_frame(schedule)
    frame = schedule.frame_or_none()
    if frame is not None:
        return flatten_frame(frame)
    rounds = schedule.rounds
    paths = [c.path for rnd in rounds for c in rnd.calls]
    counts = np.fromiter(
        (len(rnd.calls) for rnd in rounds), dtype=np.int64, count=len(rounds)
    )
    lengths = np.fromiter(map(len, paths), dtype=np.int64, count=len(paths)) - 1
    layout = ScheduleLayout.from_counts(counts, lengths)
    flat = np.fromiter(chain.from_iterable(paths), dtype=np.int64, count=layout.n_items)
    return layout, flat


@dataclass
class _FrameScreenState:
    """Validation state derived from one (frame, graph) pair.

    Attached to the immutable frame (like its cached layout); holds the
    call endpoints, canonical edge keys, the V1 missing-edge verdict,
    and — per vertex-disjoint flag — the V3–V6 screen outcome
    (informed-count trajectory, or None when some round fails)."""

    graph_ref: "weakref.ref"
    sources: np.ndarray
    receivers: np.ndarray
    keys: np.ndarray
    missing_rounds: frozenset
    screen: dict = field(default_factory=dict)


class FastValidator:
    """Reusable fast validator bound to one graph.

    Construction pays the one-time cost of materializing the graph's
    sorted edge-key array; ``validate`` can then be called for many
    schedules (the sweep experiments validate one schedule per source on
    the same graph).
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._n = graph.n_vertices
        self._nbytes = (self._n + 7) // 8
        self._full_mask = (1 << self._n) - 1
        # Canonical (u < v) edge keys min·N + max, sorted: CSR rows come in
        # ascending u with ascending neighbours, so filtering to v > u
        # yields the keys already in order.
        indptr, indices = graph.csr_arrays()
        row = np.repeat(np.arange(self._n, dtype=np.int64), np.diff(indptr))
        upper = indices > row
        self._edge_keys = row[upper] * self._n + indices[upper]
        # Sentinel-extended copy: searchsorted positions index it directly
        # (position == size lands on the -1 sentinel, never a match).
        self._edge_keys_sentinel = np.append(self._edge_keys, np.int64(-1))

    @property
    def edge_keys(self) -> np.ndarray:
        """Sorted canonical edge keys ``min·N + max`` (shared with the
        batch validator; callers must not mutate)."""
        return self._edge_keys

    # -- bitmask helpers ----------------------------------------------------

    def _mask(self, vertices: np.ndarray) -> int:
        """N-bit integer bitmask of the given vertex indices."""
        scatter = np.zeros(self._n, dtype=np.uint8)
        scatter[vertices] = 1
        return int.from_bytes(
            np.packbits(scatter, bitorder="little").tobytes(), "little"
        )

    def _mask_to_set(self, mask: int) -> set[int]:
        """Expand an integer bitmask back to a vertex set (slow path only)."""
        raw = np.frombuffer(mask.to_bytes(self._nbytes, "little"), dtype=np.uint8)
        bits = np.unpackbits(raw, bitorder="little")[: self._n]
        return set(np.flatnonzero(bits).tolist())

    # -- columnar happy-path screen -----------------------------------------

    def _missing_edge_rounds(
        self, keys: np.ndarray, layout: ScheduleLayout
    ) -> frozenset[int]:
        """Round indices containing a traversed non-edge (V1), batched."""
        if not keys.size:
            return frozenset()
        if self._edge_keys.size:
            pos = np.searchsorted(self._edge_keys, keys)
            bad = self._edge_keys_sentinel[pos] != keys
            if not bad.any():
                return frozenset()
            missing = np.flatnonzero(bad)
        else:
            missing = np.arange(keys.size)
        return frozenset(_rounds_containing(missing, layout.edge_bounds[1:]))

    def _frame_state(
        self, frame: ScheduleFrame, layout: ScheduleLayout, flat: np.ndarray
    ) -> "_FrameScreenState":
        """The per-(frame, graph) validation state, cached on the frame.

        Frames are immutable and validators are per-graph, so call
        endpoints, canonical edge keys, the V1 verdict, and the V3–V6
        screen results are all pure functions of the pair — computed on
        first validation, reused by every later one (any graph, k, or
        flag change recomputes what it must)."""
        state = getattr(frame, "_screen_state", None)
        if state is not None and state.graph_ref() is self.graph:
            return state
        n = self._n
        sources = flat[layout.path_starts]
        receivers = flat[layout.path_ends - 1]
        us = flat[layout.us_idx]
        vs = flat[layout.vs_idx]
        keys = np.minimum(us, vs) * n + np.maximum(us, vs)
        state = _FrameScreenState(
            graph_ref=weakref.ref(self.graph),
            sources=sources,
            receivers=receivers,
            keys=keys,
            missing_rounds=self._missing_edge_rounds(keys, layout),
            screen={},
        )
        # derived-value cache on the frozen frame (see flatten_frame)
        object.__setattr__(frame, "_screen_state", state)  # repro-lint: disable=RL003
        return state

    def _screen_counts(
        self,
        source: int,
        layout: ScheduleLayout,
        flat: np.ndarray,
        sources: np.ndarray,
        receivers: np.ndarray,
        keys: np.ndarray,
        vertex_disjoint: bool,
    ) -> np.ndarray | None:
        """Per-round conditions V3–V6, vectorized across all rounds.

        Returns the informed-count trajectory — identical to what the
        round loop records — when every round passes; returns None when
        *any* check fails, in which case the round loop decides.  Purely
        an accept-path shortcut: it can never change a verdict, an error
        string, or a statistic.  ``k`` plays no part in V3–V6 (V1/V2 are
        screened by the caller), so a cached result holds for every k.
        """
        # Compiled twin of this screen (numba, REPRO_NATIVE-gated);
        # check-for-check identical, so accept/reject cannot diverge.
        # Imported lazily: repro.engine.batch imports this module.
        from repro.engine import native

        if native.native_enabled():
            return native.screen_counts(
                source,
                self._n,
                layout.counts,
                layout.lengths,
                flat,
                sources,
                receivers,
                keys,
                vertex_disjoint,
            )
        n = self._n
        n_rounds = layout.n_rounds
        round_of_call = np.repeat(np.arange(n_rounds, dtype=np.int64), layout.counts)
        if receivers.size:
            # V6 across all rounds at once: in a valid broadcast receivers
            # are globally distinct and never the (pre-informed) source.
            rs = np.sort(receivers)
            if bool((rs[1:] == rs[:-1]).any()) or bool((receivers == source).any()):
                return None
        # Round in which each vertex becomes informed (source: before any).
        inform_round = np.full(n, n_rounds, dtype=np.int64)
        inform_round[source] = -1
        inform_round[receivers] = round_of_call
        if sources.size:
            # V3: informed strictly before calling; V4: one call per caller
            # per round (duplicate (round, caller) pairs sort adjacent).
            if bool((inform_round[sources] >= round_of_call).any()):
                return None
            sk = np.sort(round_of_call * n + sources)
            if bool((sk[1:] == sk[:-1]).any()):
                return None
        if keys.size:
            # V5: edge-disjoint within each round.
            round_of_edge = np.repeat(round_of_call, layout.lengths)
            ek = np.sort(round_of_edge * (n * n) + keys)
            if bool((ek[1:] == ek[:-1]).any()):
                return None
        if vertex_disjoint and flat.size:
            round_of_item = np.repeat(round_of_call, layout.lengths + 1)
            vk = np.sort(round_of_item * n + flat)
            if bool((vk[1:] == vk[:-1]).any()):
                return None
        received = np.bincount(round_of_call, minlength=n_rounds)
        return 1 + np.cumsum(received)

    def _screened_report(
        self,
        counts: np.ndarray,
        layout: ScheduleLayout,
        *,
        require_minimum_time: bool,
    ) -> ValidationReport:
        """The exact report for a schedule whose every round passed."""
        n = self._n
        n_rounds = layout.n_rounds
        report = ValidationReport(
            ok=True,
            rounds=n_rounds,
            informed_per_round=counts.tolist(),
            max_call_length=layout.max_call_length,
        )
        n_informed = int(counts[-1]) if n_rounds else 1
        if n_informed != n:
            report.errors.append(f"broadcast incomplete: {n_informed} of {n} informed")
        if require_minimum_time:
            need = minimum_broadcast_rounds(n)
            if n_rounds != need:
                report.errors.append(
                    f"schedule uses {n_rounds} rounds, minimum time is {need}"
                )
        report.ok = not report.errors
        return report

    # -- public API ---------------------------------------------------------

    def validate(
        self,
        schedule: Schedule | ScheduleFrame,
        k: int,
        *,
        require_minimum_time: bool = True,
        vertex_disjoint: bool = False,
    ) -> ValidationReport:
        """Drop-in equivalent of :func:`repro.model.validator.validate_broadcast`.

        Same :class:`ValidationReport`, same error strings (failing rounds
        are re-scanned with the reference ``validate_round``), same
        verdict — just faster on valid schedules.  Accepts the columnar
        :class:`~repro.frame.ScheduleFrame` directly (or a frame-backed
        ``Schedule`` view): the happy path then never materializes a
        ``Call`` object — rounds are only built if one of them fails and
        needs the reference re-scan for its exact error strings.
        """
        n = self._n
        report = ValidationReport(ok=True, rounds=len(schedule))
        if not (0 <= schedule.source < n):
            report.errors.append(f"source {schedule.source} not a vertex")
            report.ok = False
            return report

        sched_obj: Schedule | None = (
            None if isinstance(schedule, ScheduleFrame) else schedule
        )

        def round_obj(idx: int):
            nonlocal sched_obj
            if sched_obj is None:
                sched_obj = as_schedule(schedule)
            return sched_obj.rounds[idx]

        layout, flat = flatten_schedule(schedule)
        n_rounds = layout.n_rounds
        if flat.size and bool(((flat < 0) | (flat >= n)).any()):
            # Out-of-range path vertices: the reference raises
            # InvalidParameterError (Graph bounds check) rather than
            # reporting; delegate wholesale to reproduce that exactly
            # instead of crashing the bitmask scatter with IndexError.
            return validate_broadcast(
                self.graph,
                as_schedule(schedule),
                k,
                require_minimum_time=require_minimum_time,
                vertex_disjoint=vertex_disjoint,
            )
        n_calls = layout.n_calls
        lengths = layout.lengths
        call_bounds = layout.call_bounds
        edge_bounds = layout.edge_bounds
        frame = (
            schedule
            if isinstance(schedule, ScheduleFrame)
            else schedule.frame_or_none()
        )
        if frame is not None:
            state = self._frame_state(frame, layout, flat)
            sources, receivers, keys = state.sources, state.receivers, state.keys
            missing_rounds = state.missing_rounds
        else:
            state = None
            sources = flat[layout.path_starts]
            receivers = flat[layout.path_ends - 1]
            us = flat[layout.us_idx]
            vs = flat[layout.vs_idx]
            keys = np.minimum(us, vs) * n + np.maximum(us, vs)
            missing_rounds = self._missing_edge_rounds(keys, layout)

        # Global batches: call lengths (V2) and edge existence (V1); the
        # owning rounds of any offender fall back to the reference scan.
        suspect_rounds: set[int] = set(missing_rounds)
        if n_calls and int(lengths.max()) > k:
            suspect_rounds |= _rounds_containing(
                np.flatnonzero(lengths > k), call_bounds[1:]
            )

        if not suspect_rounds:
            # V1/V2 are clean everywhere: try the fully columnar accept
            # path (per-round checks vectorized across rounds, cached on
            # frames); fall through to the round loop only if some round
            # fails one of them.
            if state is not None and vertex_disjoint in state.screen:
                counts = state.screen[vertex_disjoint]
            else:
                counts = self._screen_counts(
                    schedule.source,
                    layout,
                    flat,
                    sources,
                    receivers,
                    keys,
                    vertex_disjoint,
                )
                if state is not None:
                    state.screen[vertex_disjoint] = counts
            if counts is not None:
                return self._screened_report(
                    counts, layout, require_minimum_time=require_minimum_time
                )

        informed = 1 << schedule.source
        full = self._full_mask
        for idx in range(n_rounds):
            c0, c1 = int(call_bounds[idx]), int(call_bounds[idx + 1])
            e0, e1 = int(edge_bounds[idx]), int(edge_bounds[idx + 1])
            m = c1 - c0
            rmask = self._mask(receivers[c0:c1]) if m else 0
            ok = idx not in suspect_rounds
            if ok and m:
                smask = self._mask(sources[c0:c1])
                ok = (
                    smask.bit_count() == m          # V4: one call per caller
                    and smask & (full ^ informed) == 0  # V3: callers informed
                    and rmask.bit_count() == m      # V6: receivers distinct
                    and rmask & informed == 0       # V6: receivers fresh
                )
                if ok:
                    ks = np.sort(keys[e0:e1])
                    ok = not (ks[1:] == ks[:-1]).any()  # V5: edge-disjoint
                if ok and vertex_disjoint:
                    verts = flat[e0 + c0 : e1 + c1]  # round's path vertices
                    ok = np.unique(verts).size == verts.size
            if not ok:
                report.errors.extend(
                    validate_round(
                        self.graph,
                        round_obj(idx),
                        self._mask_to_set(informed),
                        k,
                        round_index=idx + 1,
                        vertex_disjoint=vertex_disjoint,
                    )
                )
            # Mirror the reference: receivers become informed regardless of
            # the round's validity.
            informed |= rmask
            report.informed_per_round.append(informed.bit_count())
        report.max_call_length = int(lengths.max()) if n_calls else 0
        n_informed = informed.bit_count()
        if n_informed != n:
            report.errors.append(f"broadcast incomplete: {n_informed} of {n} informed")
        if require_minimum_time:
            need = minimum_broadcast_rounds(n)
            if n_rounds != need:
                report.errors.append(
                    f"schedule uses {n_rounds} rounds, minimum time is {need}"
                )
        report.ok = not report.errors
        return report


def validate_broadcast_fast(
    graph: Graph,
    schedule: Schedule | ScheduleFrame,
    k: int,
    *,
    require_minimum_time: bool = True,
    vertex_disjoint: bool = False,
) -> ValidationReport:
    """One-shot convenience wrapper around :class:`FastValidator`.

    For validating many schedules on the same graph, build one
    :class:`FastValidator` and reuse it — the edge-key array is the only
    per-graph setup cost.
    """
    return FastValidator(graph).validate(
        schedule,
        k,
        require_minimum_time=require_minimum_time,
        vertex_disjoint=vertex_disjoint,
    )
