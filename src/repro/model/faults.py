"""Edge-failure injection and broadcast repair (robustness ablation E19).

Sparse graphs buy low degree with low redundancy; this module measures the
price.  Given a sparse hypercube and a set of failed edges we attempt to
re-derive a minimum-time schedule with failure-aware routing:

* a **direct** Phase-1 call whose edge failed falls back to relaying
  (Condition A still offers relays unless they also failed);
* a **relayed** call tries every relay candidate (not just the canonical
  tie-break), in deterministic order;
* Phase-2 core-cube calls reroute across a surviving parallel dimension
  pair when their edge failed (u → ⊕_j u via ⊕_l: u, ⊕_l u, ⊕_j ⊕_l u,
  ⊕_j u would exceed k = 2, so Phase-2 failures are only repairable when
  k ≥ 3; at k = 2 a failed core edge makes that round's call impossible).

``attempt_broadcast_with_failures`` returns a schedule or ``None`` (it
never returns an invalid schedule — the caller validates against the
surviving graph).  Experiment E19 sweeps failure counts and reports the
repair rate; the shape to expect: repair probability decays roughly with
f/|E|, and Rule-2 (inter-cube) edges are more critical than core edges.
"""

from __future__ import annotations

import random

from repro.core.sparse_hypercube import SparseHypercube
from repro.frame import ScheduleBuilder
from repro.graphs.base import Graph
from repro.types import Edge, Schedule, canonical_edge
from repro.util.bits import flip_dim

__all__ = [
    "remove_edges",
    "failed_edge_sample",
    "faulted_graph",
    "reach_and_flip_avoiding",
    "attempt_broadcast_with_failures",
]


def remove_edges(graph: Graph, failed: set[Edge]) -> Graph:
    """A copy of ``graph`` with the failed edges deleted."""
    g = graph.copy()
    for u, v in failed:
        if g.has_edge(u, v):
            g.remove_edge(u, v)
    return g.freeze()


def failed_edge_sample(graph: Graph, count: int, seed: int) -> set[Edge]:
    """A deterministic random sample of ``count`` edges to fail."""
    rng = random.Random(seed ^ 0xFA17)
    edges = list(graph.edges())
    count = min(count, len(edges))
    return set(rng.sample(edges, count))


def faulted_graph(
    graph: Graph, count: int, seed: int
) -> tuple[Graph, tuple[Edge, ...]]:
    """Sample ``count`` edges to fail and return the surviving graph.

    One-call convenience over :func:`failed_edge_sample` +
    :func:`remove_edges` for scenario drivers; the failed edges come back
    sorted so downstream records are deterministic.
    """
    failed = failed_edge_sample(graph, count, seed)
    return remove_edges(graph, failed), tuple(sorted(failed))


def _edge_ok(failed: set[Edge], a: int, b: int) -> bool:
    return canonical_edge(a, b) not in failed


def reach_and_flip_avoiding(
    sh: SparseHypercube, u: int, dim: int, failed: set[Edge]
) -> tuple[int, ...] | None:
    """Failure-aware variant of :func:`repro.core.routing.reach_and_flip`.

    Tries the direct edge, then every relay candidate in deterministic
    (largest-relay-first) order, recursing on the relay flip.  Returns
    ``None`` when every option hits a failed edge.
    """
    level = sh.level_owning(dim)
    direct_exists = level is None or level.owns_edge(u, dim)
    if direct_exists and _edge_ok(failed, u, flip_dim(u, dim)):
        return (u, flip_dim(u, dim))
    if level is None:
        return None  # failed core edge cannot be relayed within length 1
    needed = level.dim_owner[dim]
    block = level.block_value(u)
    cands = []
    for e_local in range(level.block_len):
        if level.labeling.label_of(block ^ (1 << e_local)) == needed:
            cands.append(level.block_lo + e_local + 1)
    cands.sort(key=lambda d: flip_dim(u, d), reverse=True)
    for e in cands:
        sub = reach_and_flip_avoiding(sh, u, e, failed)
        if sub is None:
            continue
        v = sub[-1]
        if level.owns_edge(v, dim) and _edge_ok(failed, v, flip_dim(v, dim)):
            return sub + (flip_dim(v, dim),)
    return None


def attempt_broadcast_with_failures(
    sh: SparseHypercube, source: int, failed: set[Edge]
) -> Schedule | None:
    """Broadcast_k with failure-aware routing; ``None`` if any call is
    unroutable (the schedule shape — one dimension per round — is kept,
    so a ``None`` does not prove the surviving graph is not a k-mlbg, only
    that the paper's scheme shape cannot be repaired)."""
    builder = ScheduleBuilder(source)
    informed = [source]
    for dim in range(sh.n, sh.base_dims, -1):
        paths = []
        for w in sorted(informed):
            path = reach_and_flip_avoiding(sh, w, dim, failed)
            if path is None:
                return None
            paths.append(path)
        builder.add_round(paths)
        informed.extend(p[-1] for p in paths)
    for dim in range(sh.base_dims, 0, -1):
        paths = []
        for w in sorted(informed):
            v = flip_dim(w, dim)
            if not _edge_ok(failed, w, v):
                return None  # core edge failure is fatal at call length 1
            paths.append((w, v))
        builder.add_round(paths)
        informed.extend(p[-1] for p in paths)
    return Schedule.from_frame(builder.build())
