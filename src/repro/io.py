"""JSON serialization: graphs, schedules, and k-mlbg certificates.

A *certificate* is a machine-readable proof of Definition-3 membership:
the graph's edge list, the claimed k, and one minimum-time schedule per
source.  ``verify_certificate`` re-validates everything from the JSON
alone — so a certificate produced here can be checked by a third party
with no trust in the construction code.
"""

from __future__ import annotations

import json
from typing import Any

from repro.graphs.base import Graph
from repro.model.validator import validate_broadcast
from repro.types import Call, InvalidParameterError, Schedule

__all__ = [
    "graph_to_dict",
    "graph_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "certificate_for",
    "verify_certificate",
    "dump_certificate",
    "load_certificate",
]


def graph_to_dict(graph: Graph) -> dict[str, Any]:
    return {
        "n_vertices": graph.n_vertices,
        "edges": [list(e) for e in graph.edges()],
    }


def graph_from_dict(data: dict[str, Any]) -> Graph:
    try:
        n = int(data["n_vertices"])
        edges = [(int(u), int(v)) for u, v in data["edges"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidParameterError(f"malformed graph payload: {exc}") from exc
    return Graph(n, edges).freeze()


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    return {
        "source": schedule.source,
        "rounds": [
            [list(call.path) for call in rnd] for rnd in schedule.rounds
        ],
    }


def schedule_from_dict(data: dict[str, Any]) -> Schedule:
    try:
        schedule = Schedule(source=int(data["source"]))
        for rnd in data["rounds"]:
            schedule.append_round([Call.via([int(v) for v in path]) for path in rnd])
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidParameterError(f"malformed schedule payload: {exc}") from exc
    return schedule


def certificate_for(
    sh, sources: list[int] | None = None
) -> dict[str, Any]:
    """A k-mlbg certificate for a sparse hypercube (all sources by
    default; pass a sample for large instances).

    Schedules come from the batch engine — generated once per coset of
    the translation group and XOR-translated to the remaining sources —
    and materialize identically to per-source ``broadcast_schedule``
    (calls sorted by caller within each round; pinned by the property
    tests)."""
    from repro.engine.batch import all_sources_schedules

    srcs = sources if sources is not None else list(range(sh.n_vertices))
    by_source = {}
    for stack in all_sources_schedules(sh, srcs):
        for i in range(stack.n_schedules):
            sched = stack.to_schedule(i, sort_calls=True)
            by_source[sched.source] = schedule_to_dict(sched)
    return {
        "format": "repro-kmlbg-certificate/1",
        "k": sh.k,
        "n": sh.n,
        "thresholds": list(sh.thresholds),
        "graph": graph_to_dict(sh.graph),
        "schedules": [by_source[s] for s in srcs],
    }


def verify_certificate(payload: dict[str, Any]) -> bool:
    """Re-validate a certificate from its JSON-compatible payload alone."""
    if payload.get("format") != "repro-kmlbg-certificate/1":
        raise InvalidParameterError("unknown certificate format")
    graph = graph_from_dict(payload["graph"])
    k = int(payload["k"])
    for sched_data in payload["schedules"]:
        schedule = schedule_from_dict(sched_data)
        if not validate_broadcast(graph, schedule, k).ok:
            return False
    return True


def dump_certificate(payload: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, separators=(",", ":"))


def load_certificate(path: str) -> dict[str, Any]:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
