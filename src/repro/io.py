"""JSON serialization: graphs, schedules, and k-mlbg certificates.

A *certificate* is a machine-readable proof of Definition-3 membership:
the graph's edge list, the claimed k, and one minimum-time schedule per
source.  ``verify_certificate`` re-validates everything from the JSON
alone — so a certificate produced here can be checked by a third party
with no trust in the construction code.

Schedule payloads come in two versions:

* **v1** (``{"source": s, "rounds": [[path, ...], ...]}``) — the
  historical nested-lists form, still written by default inside
  certificates and always readable;
* **v2** (``repro-schedule/2``) — the columnar form mirroring
  :class:`repro.frame.ScheduleFrame` exactly: one flat ``path_verts``
  list plus ``call_offsets``/``round_offsets``.  Compact (no per-call
  nesting) and loadable straight into NumPy arrays without touching a
  single ``Call`` object.  ``schedule_from_dict`` sniffs the version.

``save_schedule``/``load_schedule`` wrap a v2 schedule together with its
graph and call-length bound into one self-contained file — what
``repro schedule --out`` writes and ``repro validate --schedule`` reads.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.frame import ScheduleFrame, as_frame
from repro.graphs.base import Graph
from repro.types import Call, InvalidParameterError, Schedule

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.sparse_hypercube import SparseHypercube

__all__ = [
    "SCHEDULE_FORMAT_V2",
    "SCHEDULE_FILE_FORMAT",
    "graph_to_dict",
    "graph_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "frame_to_dict",
    "frame_from_dict",
    "save_schedule",
    "load_schedule",
    "certificate_for",
    "verify_certificate",
    "dump_certificate",
    "load_certificate",
]

SCHEDULE_FORMAT_V2 = "repro-schedule/2"
SCHEDULE_FILE_FORMAT = "repro-schedule-file/1"


def graph_to_dict(graph: Graph) -> dict[str, Any]:
    return {
        "n_vertices": graph.n_vertices,
        "edges": [list(e) for e in graph.edges()],
    }


def graph_from_dict(data: dict[str, Any]) -> Graph:
    try:
        n = int(data["n_vertices"])
        edges = [(int(u), int(v)) for u, v in data["edges"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidParameterError(f"malformed graph payload: {exc}") from exc
    return Graph(n, edges).freeze()


def frame_to_dict(frame: ScheduleFrame | Schedule) -> dict[str, Any]:
    """The compact columnar (v2) payload of a schedule or frame."""
    frame = as_frame(frame)
    return {
        "format": SCHEDULE_FORMAT_V2,
        "source": frame.source,
        "path_verts": frame.path_verts.tolist(),
        "call_offsets": frame.call_offsets.tolist(),
        "round_offsets": frame.round_offsets.tolist(),
    }


def frame_from_dict(data: dict[str, Any]) -> ScheduleFrame:
    """Load a v2 payload straight into a frame (offsets are re-checked)."""
    if data.get("format") != SCHEDULE_FORMAT_V2:
        raise InvalidParameterError(
            f"not a {SCHEDULE_FORMAT_V2} payload: format="
            f"{data.get('format')!r}"
        )
    try:
        return ScheduleFrame(
            source=int(data["source"]),
            path_verts=np.asarray(data["path_verts"], dtype=np.int64),
            call_offsets=np.asarray(data["call_offsets"], dtype=np.int64),
            round_offsets=np.asarray(data["round_offsets"], dtype=np.int64),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidParameterError(f"malformed schedule payload: {exc}") from exc


def schedule_to_dict(
    schedule: Schedule | ScheduleFrame, *, version: int = 1
) -> dict[str, Any]:
    """Serialize a schedule; ``version=2`` emits the columnar form.

    v1 stays the default so existing artifacts (certificates) remain
    byte-identical; both versions round-trip losslessly.
    """
    if version == 2:
        return frame_to_dict(schedule)
    if version != 1:
        raise InvalidParameterError(f"unknown schedule payload version {version}")
    if isinstance(schedule, ScheduleFrame):
        return {
            "source": schedule.source,
            "rounds": [
                [list(path) for path in paths]
                for paths in schedule.iter_round_paths()
            ],
        }
    return {
        "source": schedule.source,
        "rounds": [[list(call.path) for call in rnd] for rnd in schedule.rounds],
    }


def schedule_from_dict(data: dict[str, Any]) -> Schedule:
    """Deserialize a schedule payload of either version (sniffed).

    Version sniffing is explicit: a ``format`` marker must be the known
    v2 string, and its *absence* selects the legacy v1 ``rounds`` shape.
    Any other marker — a future version, a typo, a foreign payload — is
    an :class:`InvalidParameterError` naming the marker, never a bare
    ``KeyError`` from the v1 parser chewing on the wrong shape.
    """
    marker = data.get("format")
    if marker == SCHEDULE_FORMAT_V2:
        return Schedule.from_frame(frame_from_dict(data))
    if marker is not None:
        raise InvalidParameterError(
            f"unknown schedule payload format {marker!r} "
            f"(this reader supports {SCHEDULE_FORMAT_V2} and the "
            "marker-less v1 rounds shape)"
        )
    try:
        schedule = Schedule(source=int(data["source"]))
        for rnd in data["rounds"]:
            schedule.append_round([Call.via([int(v) for v in path]) for path in rnd])
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidParameterError(f"malformed schedule payload: {exc}") from exc
    return schedule


def save_schedule(
    path: str,
    graph: Graph,
    schedule: Schedule | ScheduleFrame,
    *,
    k: int | None = None,
) -> None:
    """Write one self-contained schedule file (graph + columnar schedule).

    ``k`` records the call-length bound the schedule claims to respect
    (``None`` = unbounded); ``repro validate --schedule FILE`` re-checks
    the claim without any other inputs.
    """
    payload = {
        "format": SCHEDULE_FILE_FORMAT,
        "k": k,
        "graph": graph_to_dict(graph),
        "schedule": frame_to_dict(schedule),
    }
    with open(path, "w", encoding="utf-8") as fh:
        # v1 bytes are pinned by golden tests: the payload is built in a
        # fixed key order and sorting now would change shipped artifacts.
        json.dump(payload, fh, separators=(",", ":"))  # repro-lint: disable=RL002


def load_schedule(path: str) -> tuple[Graph, ScheduleFrame, int | None]:
    """Read a file written by :func:`save_schedule`."""
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except json.JSONDecodeError as exc:
        raise InvalidParameterError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "format" not in payload:
        raise InvalidParameterError(
            f"{path} has no schedule-file version marker "
            f"(expected format={SCHEDULE_FILE_FORMAT!r})"
        )
    if payload["format"] != SCHEDULE_FILE_FORMAT:
        raise InvalidParameterError(
            f"{path} is not a {SCHEDULE_FILE_FORMAT} file "
            f"(format={payload['format']!r})"
        )
    graph = graph_from_dict(payload.get("graph", {}))
    frame = frame_from_dict(payload.get("schedule", {}))
    k = payload.get("k")
    return graph, frame, None if k is None else int(k)


def certificate_for(
    sh: "SparseHypercube", sources: list[int] | None = None
) -> dict[str, Any]:
    """A k-mlbg certificate for a sparse hypercube (all sources by
    default; pass a sample for large instances).

    Schedules come from the batch engine — generated once per coset of
    the translation group and XOR-translated to the remaining sources —
    and materialize identically to per-source ``broadcast_schedule``
    (calls sorted by caller within each round; pinned by the property
    tests)."""
    from repro.engine.batch import all_sources_schedules

    srcs = sources if sources is not None else list(range(sh.n_vertices))
    by_source: dict[int, dict[str, Any]] = {}
    for stack in all_sources_schedules(sh, srcs):
        for i in range(stack.n_schedules):
            frame = stack.to_frame(i, sort_calls=True)
            by_source[frame.source] = schedule_to_dict(frame)
    return {
        "format": "repro-kmlbg-certificate/1",
        "k": sh.k,
        "n": sh.n,
        "thresholds": list(sh.thresholds),
        "graph": graph_to_dict(sh.graph),
        "schedules": [by_source[s] for s in srcs],
    }


def verify_certificate(payload: dict[str, Any]) -> bool:
    """Re-validate a certificate from its JSON-compatible payload alone.

    Validation goes through :func:`repro.api.validate` (engine ``auto``,
    verdict-identical to the reference validator)."""
    from repro.api import validate as api_validate

    if payload.get("format") != "repro-kmlbg-certificate/1":
        raise InvalidParameterError("unknown certificate format")
    graph = graph_from_dict(payload["graph"])
    k = int(payload["k"])
    schedules = [schedule_from_dict(d) for d in payload["schedules"]]
    reports = api_validate(graph, schedules, k)
    assert isinstance(reports, list)  # a list input yields a report list
    return all(r.ok for r in reports)


def dump_certificate(payload: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        # v1 bytes are pinned by golden tests (see save_schedule).
        json.dump(payload, fh, separators=(",", ":"))  # repro-lint: disable=RL002


def load_certificate(path: str) -> dict[str, Any]:
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict):
        raise InvalidParameterError(f"{path} does not hold a JSON object")
    return payload
