"""Exact minimum-time k-line broadcast search (small graphs).

A complete branch-and-bound over round-by-round call assignments under
Definition 1.  Capable of both:

* **finding** a schedule meeting a round budget (used to reproduce the
  existence claims — Theorem 1 for small trees, spot-checks that specific
  sparse hypercubes really are k-mlbgs without trusting the schemes), and
* **refuting**: a ``None`` return with the default exhaustive settings is
  a proof that no schedule within the round budget exists — this is what
  lets tests show, e.g., that ``Q_4`` minus too many edges stops being a
  2-mlbg, or that the star is *not* a 1-mlbg.

Pruning:

* global doubling: with r rounds left, ``|U| ≤ |I|·(2^r − 1)`` must hold;
* per-component capacity: a connected component C of the uninformed
  subgraph with boundary b(C) informed neighbours satisfies
  ``|C| ≤ b(C)·(2^r − 1)`` (each round at most b(C) calls enter C, and
  the informed inside at most double);
* memoized failed states (informed-set × round);
* a global node budget (exceeding it raises — so ``None`` is always a
  certificate, never a timeout in disguise).

Since PR 2 the search runs on the shared engine
(:mod:`repro.engine.kernels`): path enumeration and the capacity prunes
are CSR-native, and *all* state — informed sets, used edges, claimed
receivers, and the failed-state memo keys — is integer bitmasks, the same
representation as the fast validator.  The bitmask memo replaces the old
``frozenset`` keys: smaller, hash-cheaper, and shared with the engine.
Enumeration order is unchanged, so refutation certificates and found
schedules are identical to the legacy implementation.

Complexity is exponential; intended for N ≲ 24 and small k.
"""

from __future__ import annotations

from repro.engine.cache import kernels_for
from repro.frame import ScheduleBuilder
from repro.graphs.base import Graph
from repro.model.validator import minimum_broadcast_rounds
from repro.schedulers.registry import ScheduleRequest, scheduler
from repro.types import InvalidParameterError, ReproError, Schedule
from repro.util.bits import mask_to_indices

__all__ = [
    "SearchBudgetExceeded",
    "find_minimum_time_schedule",
    "minimum_kline_rounds",
    "is_k_mlbg_exact",
]


class SearchBudgetExceeded(ReproError):
    """The exact search ran out of its node budget (result unknown)."""


def find_minimum_time_schedule(
    graph: Graph,
    source: int,
    k: int,
    *,
    rounds: int | None = None,
    node_budget: int = 2_000_000,
) -> Schedule | None:
    """A k-line broadcast schedule from ``source`` within ``rounds`` rounds
    (default: the minimum ⌈log₂N⌉), or ``None`` if provably none exists.

    Raises :class:`SearchBudgetExceeded` if the search tree outgrows
    ``node_budget`` — so a ``None`` return is always a certificate.
    """
    if not graph.is_connected():
        raise InvalidParameterError("graph must be connected")
    if not (0 <= source < graph.n_vertices):
        raise InvalidParameterError(f"source {source} not a vertex")
    if k < 1:
        raise InvalidParameterError(f"need k >= 1, got {k}")
    budget = minimum_broadcast_rounds(graph.n_vertices) if rounds is None else rounds
    n = graph.n_vertices
    kern = kernels_for(graph)
    full = kern.full_mask
    # Failed (informed, round) states keyed by bitmask int — the engine's
    # shared state encoding (was: frozenset keys).
    failed: set[tuple[int, int]] = set()
    nodes = 0

    def solve(informed: int, r: int) -> list[list[tuple[int, ...]]] | None:
        nonlocal nodes
        nodes += 1
        if nodes > node_budget:
            raise SearchBudgetExceeded(
                f"exact search exceeded {node_budget} nodes "
                f"(graph N={n}, k={k}, rounds={budget})"
            )
        if informed == full:
            return []
        if r == budget or not kern.capacity_ok(informed, budget - r):
            return None
        key = (informed, r)
        if key in failed:
            return None
        callers = mask_to_indices(informed)
        targets_all = full ^ informed
        result: list[list[tuple[int, ...]]] | None = None

        def assign(
            idx: int,
            used: int,
            claimed: int,
            calls: list[tuple[int, ...]],
        ) -> bool:
            nonlocal result
            nonlocal nodes
            nodes += 1
            if nodes > node_budget:
                raise SearchBudgetExceeded(f"exact search exceeded {node_budget} nodes")
            if idx == len(callers):
                if not calls:
                    return False  # no progress: dead round
                new_informed = informed
                for p in calls:
                    new_informed |= 1 << p[-1]
                rest = solve(new_informed, r + 1)
                if rest is not None:
                    result = [calls[:]] + rest
                    return True
                return False
            caller = callers[idx]
            available = targets_all & ~claimed
            for path in kern.enumerate_paths(caller, k, used, available):
                edges = kern.path_edges_mask(path)
                calls.append(path)
                if assign(idx + 1, used | edges, claimed | (1 << path[-1]), calls):
                    return True
                calls.pop()
            # caller idles
            return assign(idx + 1, used, claimed, calls)

        if assign(0, 0, 0, []):
            assert result is not None
            return result
        failed.add(key)
        return None

    rounds_paths = solve(1 << source, 0)
    if rounds_paths is None:
        return None
    builder = ScheduleBuilder(source)
    for paths in rounds_paths:
        builder.add_round(paths)
    return Schedule.from_frame(builder.build())


def minimum_kline_rounds(
    graph: Graph,
    source: int,
    k: int,
    *,
    max_rounds: int | None = None,
    node_budget: int = 2_000_000,
) -> int:
    """The exact minimum number of rounds to broadcast from ``source``
    under k-line communication (small graphs)."""
    lo = minimum_broadcast_rounds(graph.n_vertices)
    hi = max_rounds if max_rounds is not None else graph.n_vertices
    for r in range(lo, hi + 1):
        if (
            find_minimum_time_schedule(
                graph, source, k, rounds=r, node_budget=node_budget
            )
            is not None
        ):
            return r
    raise InvalidParameterError(
        f"no broadcast within {hi} rounds — graph disconnected?"
    )


def is_k_mlbg_exact(graph: Graph, k: int, *, node_budget: int = 2_000_000) -> bool:
    """Definition 3, checked exhaustively: every vertex admits a
    minimum-time k-line broadcast scheme.  Exponential; small graphs only."""
    for source in range(graph.n_vertices):
        if (
            find_minimum_time_schedule(graph, source, k, node_budget=node_budget)
            is None
        ):
            return False
    return True


@scheduler("search", "exact branch-and-bound (engine kernels, certificate on None)")
def _search_strategy(request: ScheduleRequest) -> tuple[Schedule | None, dict]:
    params = dict(request.params)
    node_budget = int(params.pop("node_budget", 2_000_000))
    if params:
        raise InvalidParameterError(f"search: unknown params {sorted(params)}")
    sched = find_minimum_time_schedule(
        request.graph,
        request.source,
        request.k_effective,
        rounds=request.rounds,
        node_budget=node_budget,
    )
    return sched, {"node_budget": node_budget, "exhaustive": sched is None}
