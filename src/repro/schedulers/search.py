"""Exact minimum-time k-line broadcast search (small graphs).

A complete branch-and-bound over round-by-round call assignments under
Definition 1.  Capable of both:

* **finding** a schedule meeting a round budget (used to reproduce the
  existence claims — Theorem 1 for small trees, spot-checks that specific
  sparse hypercubes really are k-mlbgs without trusting the schemes), and
* **refuting**: a ``None`` return with the default exhaustive settings is
  a proof that no schedule within the round budget exists — this is what
  lets tests show, e.g., that ``Q_4`` minus too many edges stops being a
  2-mlbg, or that the star is *not* a 1-mlbg.

Pruning:

* global doubling: with r rounds left, ``|U| ≤ |I|·(2^r − 1)`` must hold;
* per-component capacity: a connected component C of the uninformed
  subgraph with boundary b(C) informed neighbours satisfies
  ``|C| ≤ b(C)·(2^r − 1)`` (each round at most b(C) calls enter C, and
  the informed inside at most double);
* memoized failed states (informed-set × round);
* a global node budget (exceeding it raises — so ``None`` is always a
  certificate, never a timeout in disguise).

Complexity is exponential; intended for N ≲ 24 and small k.
"""

from __future__ import annotations

from repro.graphs.base import Graph
from repro.types import Call, InvalidParameterError, ReproError, Schedule, canonical_edge
from repro.model.validator import minimum_broadcast_rounds

__all__ = [
    "SearchBudgetExceeded",
    "find_minimum_time_schedule",
    "minimum_kline_rounds",
    "is_k_mlbg_exact",
]


class SearchBudgetExceeded(ReproError):
    """The exact search ran out of its node budget (result unknown)."""


def _enumerate_paths(
    graph: Graph,
    caller: int,
    k: int,
    used: set[tuple[int, int]],
    available_targets: set[int],
) -> list[tuple[int, ...]]:
    """All simple paths of length ≤ k from ``caller`` over unused edges,
    ending at an available target.  Deterministic order (shorter first,
    then lexicographic)."""
    out: list[tuple[int, ...]] = []

    def dfs(path: list[int], visited: set[int]) -> None:
        u = path[-1]
        if len(path) > 1 and u in available_targets:
            out.append(tuple(path))
        if len(path) - 1 == k:
            return
        for v in graph.sorted_neighbors(u):
            if v in visited:
                continue
            e = canonical_edge(u, v)
            if e in used:
                continue
            used.add(e)
            visited.add(v)
            path.append(v)
            dfs(path, visited)
            path.pop()
            visited.discard(v)
            used.discard(e)

    dfs([caller], {caller})
    out.sort(key=lambda p: (len(p), p))
    return out


def _capacity_ok(graph: Graph, informed: frozenset[int], rounds_left: int) -> bool:
    """The two capacity prunes (sound: necessary conditions)."""
    n = graph.n_vertices
    u_count = n - len(informed)
    if u_count == 0:
        return True
    if rounds_left <= 0:
        return False
    cap = (1 << rounds_left) - 1
    if u_count > len(informed) * cap:
        return False
    # per-component bound
    seen: set[int] = set()
    for v in range(n):
        if v in informed or v in seen:
            continue
        comp: list[int] = [v]
        seen.add(v)
        boundary: set[int] = set()
        stack = [v]
        while stack:
            x = stack.pop()
            for y in graph.neighbors(x):
                if y in informed:
                    boundary.add(y)
                elif y not in seen:
                    seen.add(y)
                    comp.append(y)
                    stack.append(y)
        if len(comp) > len(boundary) * cap:
            return False
    return True


def find_minimum_time_schedule(
    graph: Graph,
    source: int,
    k: int,
    *,
    rounds: int | None = None,
    node_budget: int = 2_000_000,
) -> Schedule | None:
    """A k-line broadcast schedule from ``source`` within ``rounds`` rounds
    (default: the minimum ⌈log₂N⌉), or ``None`` if provably none exists.

    Raises :class:`SearchBudgetExceeded` if the search tree outgrows
    ``node_budget`` — so a ``None`` return is always a certificate.
    """
    if not graph.is_connected():
        raise InvalidParameterError("graph must be connected")
    if not (0 <= source < graph.n_vertices):
        raise InvalidParameterError(f"source {source} not a vertex")
    if k < 1:
        raise InvalidParameterError(f"need k >= 1, got {k}")
    budget = rounds if rounds is not None else minimum_broadcast_rounds(graph.n_vertices)
    n = graph.n_vertices
    failed: set[tuple[frozenset[int], int]] = set()
    nodes = 0

    def solve(informed: frozenset[int], r: int) -> list[list[Call]] | None:
        nonlocal nodes
        nodes += 1
        if nodes > node_budget:
            raise SearchBudgetExceeded(
                f"exact search exceeded {node_budget} nodes "
                f"(graph N={n}, k={k}, rounds={budget})"
            )
        if len(informed) == n:
            return []
        if r == budget or not _capacity_ok(graph, informed, budget - r):
            return None
        key = (informed, r)
        if key in failed:
            return None
        callers = sorted(informed)
        targets_all = set(range(n)) - informed
        result: list[list[Call]] | None = None

        def assign(
            idx: int,
            used: set[tuple[int, int]],
            claimed: set[int],
            calls: list[Call],
        ) -> bool:
            nonlocal result
            nonlocal nodes
            nodes += 1
            if nodes > node_budget:
                raise SearchBudgetExceeded(
                    f"exact search exceeded {node_budget} nodes"
                )
            if idx == len(callers):
                if not calls:
                    return False  # no progress: dead round
                new_informed = informed | {c.receiver for c in calls}
                rest = solve(frozenset(new_informed), r + 1)
                if rest is not None:
                    result = [calls[:]] + rest
                    return True
                return False
            caller = callers[idx]
            available = targets_all - claimed
            for path in _enumerate_paths(graph, caller, k, used, available):
                edges = [canonical_edge(a, b) for a, b in zip(path, path[1:])]
                used.update(edges)
                claimed.add(path[-1])
                calls.append(Call.via(path))
                if assign(idx + 1, used, claimed, calls):
                    return True
                calls.pop()
                claimed.discard(path[-1])
                used.difference_update(edges)
            # caller idles
            return assign(idx + 1, used, claimed, calls)

        if assign(0, set(), set(), []):
            assert result is not None
            return result
        failed.add(key)
        return None

    rounds_calls = solve(frozenset({source}), 0)
    if rounds_calls is None:
        return None
    schedule = Schedule(source=source)
    for calls in rounds_calls:
        schedule.append_round(calls)
    return schedule


def minimum_kline_rounds(
    graph: Graph, source: int, k: int, *, max_rounds: int | None = None, node_budget: int = 2_000_000
) -> int:
    """The exact minimum number of rounds to broadcast from ``source``
    under k-line communication (small graphs)."""
    lo = minimum_broadcast_rounds(graph.n_vertices)
    hi = max_rounds if max_rounds is not None else graph.n_vertices
    for r in range(lo, hi + 1):
        if (
            find_minimum_time_schedule(
                graph, source, k, rounds=r, node_budget=node_budget
            )
            is not None
        ):
            return r
    raise InvalidParameterError(
        f"no broadcast within {hi} rounds — graph disconnected?"
    )


def is_k_mlbg_exact(
    graph: Graph, k: int, *, node_budget: int = 2_000_000
) -> bool:
    """Definition 3, checked exhaustively: every vertex admits a
    minimum-time k-line broadcast scheme.  Exponential; small graphs only."""
    for source in range(graph.n_vertices):
        if (
            find_minimum_time_schedule(graph, source, k, node_budget=node_budget)
            is None
        ):
            return False
    return True
