"""Exact multi-message broadcast search (the [24] Kwon–Chwa question).

M messages start at a common source; a call now carries a *message id*,
its caller must already hold that message, and Definition 1's physical
constraints apply per round across all messages (one call placed per
vertex, one reception per vertex, edge-disjoint paths, length ≤ k).

``find_multimessage_schedule`` finds a schedule delivering all M messages
to all vertices within a round budget, or proves none exists (complete
search with capacity pruning).  Small graphs only — the state space is
the product of per-message informed sets.

Headline facts established in tests/E22:

* pipelining the paper's own minimum-time schedule is impossible
  (every vertex calls every round — no slack), so the serial baseline is
  ``M·⌈log₂N⌉``;
* genuine multi-message schedules beat it: e.g. 2 messages on Q₃ finish
  in 4 rounds versus 6 serial (found and certified by this module);
* the trivial lower bound is ``⌈log₂N⌉ + (M − 1)`` (the source emits one
  message per round at best, and the last-emitted message still needs to
  reach everyone).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.base import Graph
from repro.model.validator import minimum_broadcast_rounds
from repro.types import (
    Call,
    InvalidParameterError,
    ReproError,
    canonical_edge,
)

__all__ = [
    "MultiMessageCall",
    "MultiMessageSchedule",
    "find_multimessage_schedule",
    "multimessage_lower_bound",
    "validate_multimessage",
]


@dataclass(frozen=True)
class MultiMessageCall:
    message: int
    call: Call


@dataclass
class MultiMessageSchedule:
    source: int
    n_messages: int
    rounds: list[list[MultiMessageCall]]

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)


def multimessage_lower_bound(n_vertices: int, n_messages: int) -> int:
    """Best of two arguments:

    * emission: ⌈log₂N⌉ + M − 1 (the source releases one message per
      round; the last released still needs a doubling phase);
    * reception counting: M(N−1) receptions are needed; round t admits at
      most ``min(2^{t-1}, ⌊N/2⌋)`` receptions (only vertices that already
      hold something can call, holders at most double per round, and a
      round is a caller→receiver matching).

    For (Q₃, M = 2) this gives 5 — and the exact search certifies 5 is
    achievable, so the bound is tight there (test-suite).
    """
    emission = minimum_broadcast_rounds(n_vertices) + n_messages - 1
    needed = n_messages * (n_vertices - 1)
    total = 0
    rounds = 0
    while total < needed:
        rounds += 1
        total += min(1 << (rounds - 1), n_vertices // 2)
    return max(emission, rounds)


def validate_multimessage(
    graph: Graph, schedule: MultiMessageSchedule, k: int
) -> list[str]:
    """Independent validator for multi-message schedules."""
    errors: list[str] = []
    holders = [
        {schedule.source} for _ in range(schedule.n_messages)
    ]
    for idx, rnd in enumerate(schedule.rounds, start=1):
        used: set[tuple[int, int]] = set()
        callers: set[int] = set()
        receivers: set[int] = set()
        for mc in rnd:
            call, msg = mc.call, mc.message
            tag = f"round {idx}, msg {msg}, {call.source}->{call.receiver}"
            if not graph.path_is_valid(call.path):
                errors.append(f"{tag}: invalid path")
                continue
            if call.length > k:
                errors.append(f"{tag}: length {call.length} > k")
            if call.source not in holders[msg]:
                errors.append(f"{tag}: caller lacks the message")
            if call.source in callers:
                errors.append(f"{tag}: caller busy")
            if call.receiver in receivers:
                errors.append(f"{tag}: receiver busy")
            if call.receiver in holders[msg]:
                errors.append(f"{tag}: receiver already has message")
            callers.add(call.source)
            receivers.add(call.receiver)
            for e in call.edges():
                if e in used:
                    errors.append(f"{tag}: edge {e} reused")
                used.add(e)
        for mc in rnd:
            holders[mc.message].add(mc.call.receiver)
    for msg, h in enumerate(holders):
        if len(h) != graph.n_vertices:
            errors.append(f"message {msg} incomplete: {len(h)}/{graph.n_vertices}")
    return errors


def find_multimessage_schedule(
    graph: Graph,
    source: int,
    k: int,
    n_messages: int,
    rounds: int,
    *,
    node_budget: int = 3_000_000,
) -> MultiMessageSchedule | None:
    """Complete search for an M-message broadcast within ``rounds``.

    Returns None only after exhausting the space (budget overrun raises).
    """
    if not graph.is_connected():
        raise InvalidParameterError("graph must be connected")
    n = graph.n_vertices
    nodes = 0
    failed: set[tuple[tuple[frozenset[int], ...], int]] = set()

    def capacity_ok(holders: tuple[frozenset[int], ...], rounds_left: int) -> bool:
        cap = (1 << rounds_left) if rounds_left >= 0 else 1
        for h in holders:
            if len(h) * cap < n:
                return False
        # source-emission bound: messages still held only by the source
        virgin = sum(1 for h in holders if h == frozenset({source}))
        if virgin > rounds_left:
            return False
        return True

    def solve(
        holders: tuple[frozenset[int], ...], r: int
    ) -> list[list[MultiMessageCall]] | None:
        nonlocal nodes
        nodes += 1
        if nodes > node_budget:
            raise ReproError(
                f"multi-message search exceeded {node_budget} nodes"
            )
        if all(len(h) == n for h in holders):
            return []
        if r == rounds or not capacity_ok(holders, rounds - r):
            return None
        key = (holders, r)
        if key in failed:
            return None
        # candidate (caller, message) units: caller holds msg, msg not done
        units: list[tuple[int, int]] = []
        for msg, h in enumerate(holders):
            if len(h) == n:
                continue
            units.extend((v, msg) for v in sorted(h))
        result: list[list[MultiMessageCall]] | None = None

        def assign(
            idx: int,
            used: set[tuple[int, int]],
            callers: set[int],
            receivers: set[int],
            calls: list[MultiMessageCall],
        ) -> bool:
            nonlocal result, nodes
            nodes += 1
            if nodes > node_budget:
                raise ReproError("multi-message search budget exceeded")
            if idx == len(units):
                if not calls:
                    return False
                new_holders = list(holders)
                for mc in calls:
                    new_holders[mc.message] = new_holders[mc.message] | {
                        mc.call.receiver
                    }
                rest = solve(tuple(new_holders), r + 1)
                if rest is not None:
                    result = [calls[:]] + rest
                    return True
                return False
            caller, msg = units[idx]
            if caller not in callers:
                targets = set(range(n)) - set(holders[msg]) - receivers
                paths = _paths_from(graph, caller, k, used, targets)
                for path in paths:
                    edges = [
                        canonical_edge(a, b) for a, b in zip(path, path[1:])
                    ]
                    used.update(edges)
                    callers.add(caller)
                    receivers.add(path[-1])
                    calls.append(MultiMessageCall(msg, Call.via(path)))
                    if assign(idx + 1, used, callers, receivers, calls):
                        return True
                    calls.pop()
                    receivers.discard(path[-1])
                    callers.discard(caller)
                    used.difference_update(edges)
            return assign(idx + 1, used, callers, receivers, calls)

        if assign(0, set(), set(), set(), []):
            assert result is not None
            return result
        failed.add(key)
        return None

    initial = tuple(frozenset({source}) for _ in range(n_messages))
    rounds_calls = solve(initial, 0)
    if rounds_calls is None:
        return None
    return MultiMessageSchedule(
        source=source, n_messages=n_messages, rounds=rounds_calls
    )


def _paths_from(
    graph: Graph,
    caller: int,
    k: int,
    used: set[tuple[int, int]],
    targets: set[int],
) -> list[tuple[int, ...]]:
    """Simple paths of length ≤ k over unused edges ending at a target."""
    out: list[tuple[int, ...]] = []

    def dfs(path: list[int], visited: set[int]) -> None:
        u = path[-1]
        if len(path) > 1 and u in targets:
            out.append(tuple(path))
        if len(path) - 1 == k:
            return
        for v in graph.sorted_neighbors(u):
            if v in visited:
                continue
            e = canonical_edge(u, v)
            if e in used:
                continue
            used.add(e)
            visited.add(v)
            path.append(v)
            dfs(path, visited)
            path.pop()
            visited.discard(v)
            used.discard(e)

    dfs([caller], {caller})
    out.sort(key=lambda p: (len(p), p))
    return out
