"""Exact multi-message broadcast search (the [24] Kwon–Chwa question).

M messages start at a common source; a call now carries a *message id*,
its caller must already hold that message, and Definition 1's physical
constraints apply per round across all messages (one call placed per
vertex, one reception per vertex, edge-disjoint paths, length ≤ k).

``find_multimessage_schedule`` finds a schedule delivering all M messages
to all vertices within a round budget, or proves none exists (complete
search with capacity pruning).  Small graphs only — the state space is
the product of per-message informed sets.

Since PR 2 the search runs on the shared engine
(:mod:`repro.engine.kernels`): path enumeration is CSR-native, and the
per-message holder sets, used-edge sets, and failed-state memo keys are
integer bitmasks — the engine's shared state encoding.

Headline facts established in tests/E22:

* pipelining the paper's own minimum-time schedule is impossible
  (every vertex calls every round — no slack), so the serial baseline is
  ``M·⌈log₂N⌉``;
* genuine multi-message schedules beat it: e.g. 2 messages on Q₃ finish
  in 4 rounds versus 6 serial (found and certified by this module);
* the trivial lower bound is ``⌈log₂N⌉ + (M − 1)`` (the source emits one
  message per round at best, and the last-emitted message still needs to
  reach everyone).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.cache import kernels_for
from repro.frame import ScheduleBuilder
from repro.graphs.base import Graph
from repro.model.validator import minimum_broadcast_rounds
from repro.schedulers.registry import ScheduleRequest, scheduler
from repro.types import (
    Call,
    InvalidParameterError,
    ReproError,
    Schedule,
)
from repro.util.bits import iter_bits

__all__ = [
    "MultiMessageCall",
    "MultiMessageSchedule",
    "find_multimessage_schedule",
    "multimessage_lower_bound",
    "validate_multimessage",
]


@dataclass(frozen=True)
class MultiMessageCall:
    message: int
    call: Call


@dataclass
class MultiMessageSchedule:
    source: int
    n_messages: int
    rounds: list[list[MultiMessageCall]]

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)


def multimessage_lower_bound(n_vertices: int, n_messages: int) -> int:
    """Best of two arguments:

    * emission: ⌈log₂N⌉ + M − 1 (the source releases one message per
      round; the last released still needs a doubling phase);
    * reception counting: M(N−1) receptions are needed; round t admits at
      most ``min(2^{t-1}, ⌊N/2⌋)`` receptions (only vertices that already
      hold something can call, holders at most double per round, and a
      round is a caller→receiver matching).

    For (Q₃, M = 2) this gives 5 — and the exact search certifies 5 is
    achievable, so the bound is tight there (test-suite).
    """
    emission = minimum_broadcast_rounds(n_vertices) + n_messages - 1
    needed = n_messages * (n_vertices - 1)
    total = 0
    rounds = 0
    while total < needed:
        rounds += 1
        total += min(1 << (rounds - 1), n_vertices // 2)
    return max(emission, rounds)


def validate_multimessage(
    graph: Graph, schedule: MultiMessageSchedule, k: int
) -> list[str]:
    """Independent validator for multi-message schedules."""
    errors: list[str] = []
    holders = [{schedule.source} for _ in range(schedule.n_messages)]
    for idx, rnd in enumerate(schedule.rounds, start=1):
        used: set[tuple[int, int]] = set()
        callers: set[int] = set()
        receivers: set[int] = set()
        for mc in rnd:
            call, msg = mc.call, mc.message
            tag = f"round {idx}, msg {msg}, {call.source}->{call.receiver}"
            if not graph.path_is_valid(call.path):
                errors.append(f"{tag}: invalid path")
                continue
            if call.length > k:
                errors.append(f"{tag}: length {call.length} > k")
            if call.source not in holders[msg]:
                errors.append(f"{tag}: caller lacks the message")
            if call.source in callers:
                errors.append(f"{tag}: caller busy")
            if call.receiver in receivers:
                errors.append(f"{tag}: receiver busy")
            if call.receiver in holders[msg]:
                errors.append(f"{tag}: receiver already has message")
            callers.add(call.source)
            receivers.add(call.receiver)
            for e in call.edges():
                if e in used:
                    errors.append(f"{tag}: edge {e} reused")
                used.add(e)
        for mc in rnd:
            holders[mc.message].add(mc.call.receiver)
    for msg, h in enumerate(holders):
        if len(h) != graph.n_vertices:
            errors.append(f"message {msg} incomplete: {len(h)}/{graph.n_vertices}")
    return errors


def find_multimessage_schedule(
    graph: Graph,
    source: int,
    k: int,
    n_messages: int,
    rounds: int,
    *,
    node_budget: int = 3_000_000,
) -> MultiMessageSchedule | None:
    """Complete search for an M-message broadcast within ``rounds``.

    Returns None only after exhausting the space (budget overrun raises).
    """
    if not graph.is_connected():
        raise InvalidParameterError("graph must be connected")
    if not (0 <= source < graph.n_vertices):
        raise InvalidParameterError(f"source {source} not a vertex")
    if k < 1:
        raise InvalidParameterError(f"need k >= 1, got {k}")
    if n_messages < 1:
        raise InvalidParameterError(f"need n_messages >= 1, got {n_messages}")
    n = graph.n_vertices
    kern = kernels_for(graph)
    full = kern.full_mask
    source_mask = 1 << source
    nodes = 0
    # Per-message holder sets and memo keys are bitmask ints (engine
    # encoding); a state is the tuple of holder masks plus the round.
    failed: set[tuple[tuple[int, ...], int]] = set()

    def capacity_ok(holders: tuple[int, ...], rounds_left: int) -> bool:
        cap = (1 << rounds_left) if rounds_left >= 0 else 1
        for h in holders:
            if h.bit_count() * cap < n:
                return False
        # source-emission bound: messages still held only by the source
        virgin = sum(1 for h in holders if h == source_mask)
        if virgin > rounds_left:
            return False
        return True

    def solve(holders: tuple[int, ...], r: int) -> list[list[MultiMessageCall]] | None:
        nonlocal nodes
        nodes += 1
        if nodes > node_budget:
            raise ReproError(f"multi-message search exceeded {node_budget} nodes")
        if all(h == full for h in holders):
            return []
        if r == rounds or not capacity_ok(holders, rounds - r):
            return None
        key = (holders, r)
        if key in failed:
            return None
        # candidate (caller, message) units: caller holds msg, msg not done
        units: list[tuple[int, int]] = []
        for msg, h in enumerate(holders):
            if h == full:
                continue
            units.extend((v, msg) for v in iter_bits(h))
        result: list[list[MultiMessageCall]] | None = None

        def assign(
            idx: int,
            used: int,
            callers: int,
            receivers: int,
            calls: list[MultiMessageCall],
        ) -> bool:
            nonlocal result, nodes
            nodes += 1
            if nodes > node_budget:
                raise ReproError("multi-message search budget exceeded")
            if idx == len(units):
                if not calls:
                    return False
                new_holders = list(holders)
                for mc in calls:
                    new_holders[mc.message] |= 1 << mc.call.receiver
                rest = solve(tuple(new_holders), r + 1)
                if rest is not None:
                    result = [calls[:]] + rest
                    return True
                return False
            caller, msg = units[idx]
            if not (callers >> caller) & 1:
                targets = full & ~holders[msg] & ~receivers
                for path in kern.enumerate_paths(caller, k, used, targets):
                    edges = kern.path_edges_mask(path)
                    calls.append(MultiMessageCall(msg, Call.via(path)))
                    if assign(
                        idx + 1,
                        used | edges,
                        callers | (1 << caller),
                        receivers | (1 << path[-1]),
                        calls,
                    ):
                        return True
                    calls.pop()
            return assign(idx + 1, used, callers, receivers, calls)

        if assign(0, 0, 0, 0, []):
            assert result is not None
            return result
        failed.add(key)
        return None

    initial = tuple(source_mask for _ in range(n_messages))
    rounds_calls = solve(initial, 0)
    if rounds_calls is None:
        return None
    return MultiMessageSchedule(
        source=source, n_messages=n_messages, rounds=rounds_calls
    )


@scheduler(
    "multimsg_search", "exact multi-message search (M=1 reduces to k-line broadcast)"
)
def _multimsg_strategy(request: ScheduleRequest) -> tuple[Schedule | None, dict]:
    params = dict(request.params)
    n_messages = int(params.pop("n_messages", 1))
    node_budget = int(params.pop("node_budget", 3_000_000))
    if params:
        raise InvalidParameterError(f"multimsg_search: unknown params {sorted(params)}")
    if request.rounds is not None:
        budget = request.rounds
    else:
        budget = multimessage_lower_bound(
            request.graph.n_vertices, n_messages
        ) if n_messages > 1 else request.round_budget
    multi = find_multimessage_schedule(
        request.graph,
        request.source,
        request.k_effective,
        n_messages,
        budget,
        node_budget=node_budget,
    )
    stats: dict = {"n_messages": n_messages, "round_budget": budget}
    if multi is None:
        return None, stats
    if n_messages == 1:
        # M = 1 is exactly Definition-1 broadcast: flatten to a Schedule.
        builder = ScheduleBuilder(request.source)
        for rnd in multi.rounds:
            builder.add_round([mc.call.path for mc in rnd])
        return Schedule.from_frame(builder.build()), stats
    errors = validate_multimessage(request.graph, multi, request.k_effective)
    # An M > 1 schedule is not a Definition-1 Schedule, so the registry's
    # reference-validation step cannot apply; the multi-message validator
    # gates `found` instead, keeping the "validated before reported"
    # contract.
    stats["found"] = not errors
    stats["rounds"] = multi.num_rounds
    stats["errors"] = errors
    stats["multi_schedule_rounds"] = multi.num_rounds
    return None, stats
