"""Declarative scheduler registry (mirrors :mod:`repro.analysis.registry`).

Every scheduling strategy registers itself with the :func:`scheduler`
decorator under a stable name (``greedy``, ``search``, ``store_forward``,
``multimsg_search``) and speaks one request/result API:

``ScheduleRequest``
    graph + source + call-length bound ``k`` (None = unbounded) + round
    budget (None = the minimum ⌈log₂N⌉) + seed + free-form strategy
    parameters.

``ScheduleResult``
    what came back: the schedule (or None), its round count, wall time,
    a reference-validator verdict, and per-strategy stats.

The registry is consumed by the ``repro schedule`` CLI subcommand, the
E23 cross-check experiment, and the scheduler benchmarks; the historical
entry points (``heuristic_line_broadcast``, ``find_minimum_time_schedule``,
…) remain as facades over the same strategies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.frame import ScheduleFrame
from repro.graphs.base import Graph
from repro.model.validator import ValidationReport, minimum_broadcast_rounds
from repro.types import InvalidParameterError, Schedule

__all__ = [
    "ScheduleRequest",
    "ScheduleResult",
    "SchedulerSpec",
    "scheduler",
    "get_scheduler",
    "scheduler_names",
    "all_schedulers",
    "run_scheduler",
    "load_all",
]


@dataclass(frozen=True)
class ScheduleRequest:
    """One scheduling problem instance."""

    graph: Graph
    source: int = 0
    k: int | None = None
    rounds: int | None = None
    seed: int = 0
    params: Mapping[str, Any] = field(default_factory=dict)

    @property
    def k_effective(self) -> int:
        """``k`` with None resolved to the unbounded value N − 1."""
        return self.k if self.k is not None else max(1, self.graph.n_vertices - 1)

    @property
    def round_budget(self) -> int:
        """The round budget with None resolved to the minimum ⌈log₂N⌉."""
        if self.rounds is not None:
            return self.rounds
        return minimum_broadcast_rounds(self.graph.n_vertices)


@dataclass
class ScheduleResult:
    """A strategy's answer to a :class:`ScheduleRequest`.

    A found schedule is carried in both representations: ``frame`` is
    the canonical columnar :class:`~repro.frame.ScheduleFrame` (what io,
    the validators, and the batch engine consume), ``schedule`` the
    frozen object view over the same frame.
    """

    scheduler: str
    source: int
    k: int | None
    found: bool
    schedule: Schedule | None
    rounds: int | None
    seconds: float
    valid: bool | None = None
    stats: dict[str, Any] = field(default_factory=dict)
    frame: "ScheduleFrame | None" = None


# A strategy maps a request to (schedule-or-None, stats); the registry
# adds timing and validation around it.
StrategyFn = Callable[[ScheduleRequest], tuple[Schedule | None, dict[str, Any]]]


@dataclass(frozen=True)
class SchedulerSpec:
    """One registered strategy: name, title, callable, and module."""

    name: str
    title: str
    fn: StrategyFn
    module: str = field(default="")


_REGISTRY: dict[str, SchedulerSpec] = {}


def scheduler(name: str, title: str) -> Callable[[StrategyFn], StrategyFn]:
    """Register a strategy under ``name`` (double registration raises)."""

    def decorate(fn: StrategyFn) -> StrategyFn:
        key = name.lower()
        if key in _REGISTRY:
            raise InvalidParameterError(
                f"scheduler {key!r} registered twice "
                f"({_REGISTRY[key].fn.__module__} and {fn.__module__})"
            )
        _REGISTRY[key] = SchedulerSpec(
            name=key, title=title, fn=fn, module=fn.__module__
        )
        return fn

    return decorate


def load_all() -> None:
    """Import every strategy module (idempotent); registration happens at
    import time, exactly as for the experiment registry."""
    from repro.schedulers import (  # noqa: F401
        greedy,
        multimsg_search,
        search,
        store_forward,
    )


def scheduler_names() -> list[str]:
    """All registered scheduler names, sorted."""
    load_all()
    return sorted(_REGISTRY)


def all_schedulers() -> list[SchedulerSpec]:
    load_all()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_scheduler(name: str) -> SchedulerSpec:
    load_all()
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown scheduler {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[key]


def run_scheduler(
    name: str, request: ScheduleRequest, *, validate: bool = True
) -> ScheduleResult:
    """Run one registered strategy and wrap its answer in a
    :class:`ScheduleResult`.

    Every found schedule comes back **frozen** (builder mutates, result
    doesn't) with its columnar frame attached.  With ``validate=True``
    (the default) the result is checked through :func:`repro.api.validate`
    — engine ``auto``, whose verdicts and error strings equal the
    reference validator's exactly — and minimum-time is required exactly
    when the request left the round budget at the minimum.
    """
    spec = get_scheduler(name)
    t0 = time.perf_counter()
    sched, stats = spec.fn(request)
    seconds = time.perf_counter() - t0
    valid: bool | None = None
    frame: ScheduleFrame | None = None
    if sched is not None:
        frame = sched.freeze().to_frame()
    if validate and sched is not None:
        from repro.api import validate as api_validate

        report = api_validate(
            request.graph,
            frame,
            request.k_effective,
            require_minimum_time=(request.rounds is None),
        )
        assert isinstance(report, ValidationReport)  # single input → one report
        valid = report.ok
        if not report.ok:
            stats = dict(stats)
            stats["validation_errors"] = list(report.errors)
    return ScheduleResult(
        scheduler=spec.name,
        source=request.source,
        k=request.k,
        found=sched is not None or bool(stats.get("found")),
        schedule=sched,
        rounds=sched.num_rounds if sched is not None else stats.get("rounds"),
        seconds=seconds,
        valid=valid,
        stats=dict(stats),
        frame=frame,
    )
