"""Randomized capacity-aware heuristic line-broadcast scheduler.

For graphs too large for :mod:`repro.schedulers.search`, this builds a
minimum-time schedule by randomized greedy rounds with a *component
capacity* scorer, restarting on failure.

Per round, callers are processed in (shuffled) order; each caller picks a
target among the uninformed vertices reachable over still-unused edges
within distance k, minimizing a penalty that measures how close each
uninformed component would be to violating the capacity bound
``|C| ≤ b(C)·(2^r − 1)`` (b = informed boundary vertices, r = rounds
remaining).  That is exactly the prune of the exact searcher, used here
as a steering heuristic — it is what avoids the classic failure modes
(stranding a deep path tail; starving a branch of entries).

Since PR 2 the scheduler is a thin strategy over the shared engine
(:mod:`repro.engine.kernels`): reachability, component labeling, and the
capacity scorer run on CSR-derived adjacency with integer-bitmask state,
and candidate probes are *incremental* (informing a vertex only splits
its own component, so a probe relabels one component instead of the whole
graph — the legacy scorer's per-candidate full scan is what the
``bench_schedulers`` speedup row measures).  Successful attempts are
checked by the bitset fast validator before being returned.

The scheduler is *sound but incomplete*: every returned schedule is
validated; ``None`` only means "not found within the restart budget".
Farley's theorem [14] guarantees a minimum-time schedule exists for every
connected graph when k is unbounded, so on the Theorem-1 trees a ``None``
indicates the heuristic (not the paper) failed; the test-suite pins the
families where it is known to succeed.
"""

from __future__ import annotations

import random

from repro.engine.cache import fast_validator_for, kernels_for
from repro.engine.kernels import UNREACHED, GraphKernels, PenaltyState
from repro.frame import ScheduleBuilder
from repro.graphs.base import Graph
from repro.model.validator import minimum_broadcast_rounds
from repro.schedulers.registry import ScheduleRequest, scheduler
from repro.types import InvalidParameterError, Schedule
from repro.util.bits import iter_bits, mask_to_indices

__all__ = ["heuristic_line_broadcast"]


def _final_round_by_flow(
    graph: Graph, informed: set[int], k: int
) -> list[tuple[int, ...]] | None:
    """Cover *all* remaining uninformed vertices in one round via max-flow
    path packing (the last round must inform everyone; greedy pairing is
    easily suboptimal there).  Returns the call paths, or None if packing
    falls short or some packed path exceeds k."""
    from repro.flows.paths import decompose_paths

    uninformed = set(graph.vertices()) - informed
    if not uninformed:
        return []
    if len(uninformed) > len(informed):
        return None
    paths = decompose_paths(graph, informed, uninformed)
    if len(paths) < len(uninformed):
        return None
    if any(len(p) - 1 > k for p in paths):
        return None
    return [tuple(p) for p in paths]


def _pick_target(
    candidates: list[int],
    pstate: PenaltyState,
    rng: random.Random,
    sample_cap: int,
) -> int | None:
    """The penalty-minimizing target for one caller (randomized sampling).

    Each probe is an incremental component split, not a graph re-scan."""
    if not candidates:
        return None
    if len(candidates) > sample_cap:
        candidates = rng.sample(candidates, sample_cap)
    best_v, best_score = None, None
    order = candidates[:]
    rng.shuffle(order)
    for v in order:
        score = pstate.probe(v)
        if best_score is None or score < best_score:
            best_v, best_score = v, score
    return best_v


def _build_round(
    kern: GraphKernels,
    informed_mask: int,
    k: int,
    rounds_left_after: int,
    rng: random.Random,
    *,
    shuffle: bool,
    sample_cap: int = 24,
) -> list[tuple[int, ...]]:
    """One greedy round, as a list of call paths.

    Strategy (the order matters — it encodes the scheduling insights the
    tight cases need):

    1. if this is the final round, try to cover every remaining vertex by
       max-flow path packing;
    2. serve *needy* components first — components that would violate the
       capacity bound if not entered this round get a caller assigned
       before anything else;
    3. remaining callers greedily pick penalty-minimizing targets.
    """
    n = kern.n
    uninformed_count = n - informed_mask.bit_count()
    if rounds_left_after == 0:
        flow_paths = _final_round_by_flow(kern.graph, set(iter_bits(informed_mask)), k)
        if flow_paths is not None:
            return flow_paths
    callers = mask_to_indices(informed_mask)
    if shuffle:
        rng.shuffle(callers)
    used_mask = 0
    claimed_mask = 0
    calls: list[tuple[int, ...]] = []
    summary = kern.components(informed_mask)
    pstate = PenaltyState(kern, informed_mask, rounds_left_after, summary=summary)
    remaining_callers = callers[:]

    def place(caller: int, path: tuple[int, ...]) -> None:
        nonlocal used_mask, claimed_mask
        target = path[-1]
        calls.append(path)
        claimed_mask |= 1 << target
        pstate.commit(target)
        used_mask |= kern.path_edges_mask(path)
        remaining_callers.remove(caller)

    # 1) needy components: must be entered this round or they die
    cap_after = (1 << rounds_left_after) - 1
    needy = [
        label
        for label in range(summary.n_components)
        if summary.sizes[label] > summary.boundaries[label] * cap_after
    ]
    needy.sort(
        key=lambda label: summary.sizes[label]
        / max(1, summary.boundaries[label]),
        reverse=True,
    )
    # Membership frozen at round start (pstate relabels as calls commit).
    needy_members = [summary.members(label).tolist() for label in needy]
    for members in needy_members:
        # prefer the *nearest* caller: a distant caller's path would cross
        # (and block) the territory of callers better placed to serve the
        # remaining needy components
        options: list[tuple[int, float, int]] = []
        reach: list[tuple[int, list[int], list[int]]] = []
        for caller in remaining_callers:
            parent, depth, _order = kern.reachable(caller, k, used_mask)
            candidates = [
                v
                for v in members
                if parent[v] != UNREACHED and not (claimed_mask >> v) & 1
            ]
            if candidates:
                dist = min(depth[v] for v in candidates)
                options.append((dist, rng.random(), len(reach)))
                reach.append((caller, parent, candidates))
        if not options:
            return []  # this attempt is doomed; fail fast and restart
        _, _, idx = min(options)
        caller, parent, candidates = reach[idx]
        target = _pick_target(candidates, pstate, rng, sample_cap)
        assert target is not None
        place(caller, kern.path_to(parent, target))

    # 2) everyone else: greedy penalty-minimizing targets
    for caller in remaining_callers[:]:
        if claimed_mask.bit_count() >= uninformed_count:
            break
        parent, _depth, order = kern.reachable(caller, k, used_mask)
        candidates = [
            v
            for v in order[1:]
            if not (informed_mask >> v) & 1 and not (claimed_mask >> v) & 1
        ]
        target = _pick_target(candidates, pstate, rng, sample_cap)
        if target is not None:
            place(caller, kern.path_to(parent, target))
    return calls


def heuristic_line_broadcast(
    graph: Graph,
    source: int,
    k: int | None = None,
    *,
    rounds: int | None = None,
    restarts: int = 300,
    seed: int = 0,
    rng: random.Random | None = None,
    sample_cap: int = 24,
) -> Schedule | None:
    """Attempt a minimum-time k-line broadcast schedule from ``source``.

    ``k = None`` means unbounded call length (the general line model of
    [14]; equivalently k = N−1).  Returns a schedule informing all
    vertices within ``rounds`` (default ⌈log₂N⌉) rounds, or ``None``.
    The result is a frozen frame-backed view (rounds are accumulated in
    a :class:`~repro.frame.ScheduleBuilder`, never as per-call objects).

    Randomness is fully explicit: attempt 0 is deterministic (sorted
    callers, seeded scorer); later attempts shuffle caller order and
    sample candidate targets from per-attempt generators derived either
    from ``seed`` or, when given, from the caller's ``rng`` — never from
    the module-global ``random`` state, so runs reproduce exactly across
    processes (``--jobs N``) and interleaved callers.

    Every successful attempt is re-checked by the bitset fast validator
    before being returned (belt-and-braces: the validator shares the
    engine's bitmask state representation, not its round construction).
    """
    if not graph.is_connected():
        raise InvalidParameterError("graph must be connected")
    if not (0 <= source < graph.n_vertices):
        raise InvalidParameterError(f"source {source} not a vertex")
    k_eff = k if k is not None else graph.n_vertices - 1
    if k_eff < 1:
        raise InvalidParameterError(f"need k >= 1, got {k_eff}")
    budget = minimum_broadcast_rounds(graph.n_vertices) if rounds is None else rounds
    n = graph.n_vertices
    kern = kernels_for(graph)
    validator = fast_validator_for(graph)
    for attempt in range(restarts):
        if rng is not None:
            attempt_rng = random.Random(rng.getrandbits(64))
        else:
            attempt_rng = random.Random((seed << 20) ^ attempt)
        informed_mask = 1 << source
        builder = ScheduleBuilder(source)
        ok = True
        for r in range(budget):
            remaining_after = budget - r - 1
            paths = _build_round(
                kern,
                informed_mask,
                k_eff,
                remaining_after,
                attempt_rng,
                shuffle=(attempt > 0),
                sample_cap=sample_cap,
            )
            uninformed_left = n - informed_mask.bit_count() - len(paths)
            if uninformed_left > 0 and not paths:
                ok = False
                break
            builder.add_round(paths)
            for p in paths:
                informed_mask |= 1 << p[-1]
            if informed_mask == kern.full_mask:
                break  # done — don't pad a surplus budget with empty rounds
            # early infeasibility: doubling + capacity prunes
            if not kern.capacity_ok(informed_mask, remaining_after):
                ok = False
                break
        if ok and informed_mask == kern.full_mask:
            frame = builder.build()
            report = validator.validate(frame, k_eff, require_minimum_time=False)
            if report.ok:
                return Schedule.from_frame(frame)
    return None


@scheduler("greedy", "randomized capacity-aware heuristic (engine kernels)")
def _greedy_strategy(request: ScheduleRequest) -> tuple[Schedule | None, dict]:
    params = dict(request.params)
    restarts = int(params.pop("restarts", 300))
    sample_cap = int(params.pop("sample_cap", 24))
    if params:
        raise InvalidParameterError(f"greedy: unknown params {sorted(params)}")
    sched = heuristic_line_broadcast(
        request.graph,
        request.source,
        request.k,
        rounds=request.rounds,
        restarts=restarts,
        seed=request.seed,
        sample_cap=sample_cap,
    )
    return sched, {"restarts": restarts, "sample_cap": sample_cap}
