"""Legacy set-based scheduler primitives, kept as oracle and baseline.

Before the shared scheduling engine (:mod:`repro.engine.kernels`), the
greedy and exact schedulers each privately implemented bounded-path
enumeration and the component-capacity prune over Python sets.  Those
implementations live on here, verbatim, for two purposes:

* **oracle** — the property tests pin the engine kernels to these
  functions (identical path enumeration, component summaries, capacity
  verdicts) on random graphs;
* **baseline** — ``benchmarks/bench_schedulers.py`` records the
  kernel-vs-legacy speedup, and :func:`heuristic_line_broadcast_legacy`
  is the full legacy greedy it races against.

Nothing in the library proper calls this module; new code should use the
engine kernels.
"""

from __future__ import annotations

import random
from collections import deque

from repro.graphs.base import Graph
from repro.model.validator import minimum_broadcast_rounds
from repro.types import Call, InvalidParameterError, Schedule, canonical_edge

__all__ = [
    "reachable_paths",
    "enumerate_paths",
    "component_penalty",
    "uninformed_components",
    "capacity_ok",
    "heuristic_line_broadcast_legacy",
]


def reachable_paths(
    graph: Graph,
    caller: int,
    k: int,
    used: set[tuple[int, int]],
) -> dict[int, tuple[int, ...]]:
    """BFS over unused edges: one shortest free path per reachable vertex
    within distance k (trees: the unique free path)."""
    parent: dict[int, int] = {caller: -1}
    depth = {caller: 0}
    dq: deque[int] = deque([caller])
    while dq:
        u = dq.popleft()
        if depth[u] == k:
            continue
        for v in graph.sorted_neighbors(u):
            if v in parent or canonical_edge(u, v) in used:
                continue
            parent[v] = u
            depth[v] = depth[u] + 1
            dq.append(v)
    paths: dict[int, tuple[int, ...]] = {}
    for v in parent:
        if v == caller:
            continue
        path = [v]
        while path[-1] != caller:
            path.append(parent[path[-1]])
        paths[v] = tuple(reversed(path))
    return paths


def enumerate_paths(
    graph: Graph,
    caller: int,
    k: int,
    used: set[tuple[int, int]],
    available_targets: set[int],
) -> list[tuple[int, ...]]:
    """All simple paths of length ≤ k from ``caller`` over unused edges,
    ending at an available target.  Deterministic order (shorter first,
    then lexicographic)."""
    out: list[tuple[int, ...]] = []

    def dfs(path: list[int], visited: set[int]) -> None:
        u = path[-1]
        if len(path) > 1 and u in available_targets:
            out.append(tuple(path))
        if len(path) - 1 == k:
            return
        for v in graph.sorted_neighbors(u):
            if v in visited:
                continue
            e = canonical_edge(u, v)
            if e in used:
                continue
            used.add(e)
            visited.add(v)
            path.append(v)
            dfs(path, visited)
            path.pop()
            visited.discard(v)
            used.discard(e)

    dfs([caller], {caller})
    out.sort(key=lambda p: (len(p), p))
    return out


def component_penalty(graph: Graph, informed: set[int], rounds_left: int) -> float:
    """Σ over uninformed components of overflow beyond the capacity bound,
    plus a soft term preferring roomy slack."""
    if rounds_left < 0:
        return float("inf")
    cap_mult = (1 << rounds_left) - 1 if rounds_left > 0 else 0
    penalty = 0.0
    seen: set[int] = set()
    for v in range(graph.n_vertices):
        if v in informed or v in seen:
            continue
        comp_size = 0
        boundary: set[int] = set()
        stack = [v]
        seen.add(v)
        while stack:
            x = stack.pop()
            comp_size += 1
            for y in graph.neighbors(x):
                if y in informed:
                    boundary.add(y)
                elif y not in seen:
                    seen.add(y)
                    stack.append(y)
        capacity = len(boundary) * cap_mult
        if comp_size > capacity:
            penalty += 1000.0 * (comp_size - capacity)
        elif capacity > 0:
            penalty += comp_size * comp_size / capacity
    return penalty


def uninformed_components(
    graph: Graph, informed: set[int]
) -> list[tuple[set[int], set[int]]]:
    """Connected components of the uninformed subgraph with their informed
    boundary vertex sets, as ``(component, boundary)`` pairs."""
    comps: list[tuple[set[int], set[int]]] = []
    seen: set[int] = set()
    for v in range(graph.n_vertices):
        if v in informed or v in seen:
            continue
        comp = {v}
        boundary: set[int] = set()
        stack = [v]
        seen.add(v)
        while stack:
            x = stack.pop()
            for y in graph.neighbors(x):
                if y in informed:
                    boundary.add(y)
                elif y not in seen:
                    seen.add(y)
                    comp.add(y)
                    stack.append(y)
        comps.append((comp, boundary))
    return comps


def capacity_ok(graph: Graph, informed: frozenset[int], rounds_left: int) -> bool:
    """The two capacity prunes (sound: necessary conditions)."""
    n = graph.n_vertices
    u_count = n - len(informed)
    if u_count == 0:
        return True
    if rounds_left <= 0:
        return False
    cap = (1 << rounds_left) - 1
    if u_count > len(informed) * cap:
        return False
    seen: set[int] = set()
    for v in range(n):
        if v in informed or v in seen:
            continue
        comp: list[int] = [v]
        seen.add(v)
        boundary: set[int] = set()
        stack = [v]
        while stack:
            x = stack.pop()
            for y in graph.neighbors(x):
                if y in informed:
                    boundary.add(y)
                elif y not in seen:
                    seen.add(y)
                    comp.append(y)
                    stack.append(y)
        if len(comp) > len(boundary) * cap:
            return False
    return True


def _pick_target(
    graph: Graph,
    caller: int,
    candidates: list[int],
    paths: dict[int, tuple[int, ...]],
    hypothetical: set[int],
    rounds_left_after: int,
    rng: random.Random,
    sample_cap: int,
) -> int | None:
    """The penalty-minimizing target for one caller (randomized sampling)."""
    if not candidates:
        return None
    if len(candidates) > sample_cap:
        candidates = rng.sample(candidates, sample_cap)
    best_v, best_score = None, None
    order = candidates[:]
    rng.shuffle(order)
    for v in order:
        hypothetical.add(v)
        score = component_penalty(graph, hypothetical, rounds_left_after)
        hypothetical.discard(v)
        if best_score is None or score < best_score:
            best_v, best_score = v, score
    return best_v


def _final_round_by_flow(graph: Graph, informed: set[int], k: int) -> list[Call] | None:
    """Cover *all* remaining uninformed vertices in one round via max-flow
    path packing."""
    from repro.flows.paths import decompose_paths

    uninformed = set(graph.vertices()) - informed
    if not uninformed:
        return []
    if len(uninformed) > len(informed):
        return None
    paths = decompose_paths(graph, informed, uninformed)
    if len(paths) < len(uninformed):
        return None
    calls = [Call.via(p) for p in paths]
    if any(c.length > k for c in calls):
        return None
    return calls


_Option = tuple[int, float, int, dict[int, tuple[int, ...]], list[int]]


def _build_round(
    graph: Graph,
    informed: set[int],
    k: int,
    rounds_left_after: int,
    rng: random.Random,
    *,
    shuffle: bool,
    sample_cap: int = 24,
) -> list[Call]:
    """One greedy round (see the engine-backed greedy for the strategy)."""
    uninformed_count = graph.n_vertices - len(informed)
    if rounds_left_after == 0:
        flow_calls = _final_round_by_flow(graph, informed, k)
        if flow_calls is not None:
            return flow_calls
    callers = sorted(informed)
    if shuffle:
        rng.shuffle(callers)
    used: set[tuple[int, int]] = set()
    claimed: set[int] = set()
    calls: list[Call] = []
    hypothetical = set(informed)
    remaining_callers = callers[:]

    def place(caller: int, target: int, path: tuple[int, ...]) -> None:
        calls.append(Call.via(path))
        claimed.add(target)
        hypothetical.add(target)
        used.update(canonical_edge(a, b) for a, b in zip(path, path[1:]))
        remaining_callers.remove(caller)

    cap_after = (1 << rounds_left_after) - 1
    needy = [
        (comp, boundary)
        for comp, boundary in uninformed_components(graph, informed)
        if len(comp) > len(boundary) * cap_after
    ]
    needy.sort(key=lambda cb: len(cb[0]) / max(1, len(cb[1])), reverse=True)
    for comp, _boundary in needy:
        options: list[_Option] = []
        for caller in remaining_callers:
            paths = reachable_paths(graph, caller, k, used)
            candidates = [v for v in comp if v in paths and v not in claimed]
            if candidates:
                dist = min(len(paths[v]) - 1 for v in candidates)
                options.append((dist, rng.random(), caller, paths, candidates))
        if not options:
            return []
        _, _, caller, paths, candidates = min(options)
        target = _pick_target(
            graph, caller, candidates, paths, hypothetical,
            rounds_left_after, rng, sample_cap,
        )
        assert target is not None
        place(caller, target, paths[target])

    for caller in remaining_callers[:]:
        if len(claimed) >= uninformed_count:
            break
        paths = reachable_paths(graph, caller, k, used)
        candidates = [v for v in paths if v not in informed and v not in claimed]
        target = _pick_target(
            graph, caller, candidates, paths, hypothetical,
            rounds_left_after, rng, sample_cap,
        )
        if target is not None:
            place(caller, target, paths[target])
    return calls


def heuristic_line_broadcast_legacy(
    graph: Graph,
    source: int,
    k: int | None = None,
    *,
    rounds: int | None = None,
    restarts: int = 300,
    seed: int = 0,
) -> Schedule | None:
    """The pre-engine greedy scheduler, byte-for-byte the PR-1 behaviour.

    Benchmark baseline only; use
    :func:`repro.schedulers.greedy.heuristic_line_broadcast`.
    """
    if not graph.is_connected():
        raise InvalidParameterError("graph must be connected")
    if not (0 <= source < graph.n_vertices):
        raise InvalidParameterError(f"source {source} not a vertex")
    k_eff = k if k is not None else graph.n_vertices - 1
    if k_eff < 1:
        raise InvalidParameterError(f"need k >= 1, got {k_eff}")
    budget = minimum_broadcast_rounds(graph.n_vertices) if rounds is None else rounds
    n = graph.n_vertices
    for attempt in range(restarts):
        rng = random.Random((seed << 20) ^ attempt)
        informed: set[int] = {source}
        schedule = Schedule(source=source)
        ok = True
        for r in range(budget):
            remaining_after = budget - r - 1
            calls = _build_round(
                graph,
                informed,
                k_eff,
                remaining_after,
                rng,
                shuffle=(attempt > 0),
            )
            uninformed_left = n - len(informed) - len(calls)
            if uninformed_left > 0 and not calls:
                ok = False
                break
            schedule.append_round(calls)
            informed.update(c.receiver for c in calls)
            if (
                uninformed_left > 0
                and component_penalty(graph, informed, remaining_after) >= 1000.0
            ):
                ok = False
                break
        if ok and len(informed) == n:
            # The oracle boundary matches the engine schedulers: results
            # are frozen once handed out (builders mutate, results don't).
            return schedule.freeze()
    return None
