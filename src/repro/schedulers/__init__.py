"""Broadcast schedulers beyond the paper's closed-form schemes.

``search``
    Exact branch-and-bound: finds a minimum-time k-line broadcast schedule
    or certifies none exists (small graphs).  Used to machine-check
    Definition-3 membership *independently* of the constructions' schemes,
    and to verify Theorem 1 trees exactly for small h.

``greedy``
    Randomized capacity-aware heuristic for larger instances (Theorem-1
    trees at larger h, baseline topologies).  Sound but incomplete: a
    returned schedule is always validated; a None return means "not
    found", never "impossible".

``store_forward``
    The k = 1 baseline: classic binomial-tree broadcast on the hypercube
    (the store-and-forward model the paper generalizes away from).
"""

from repro.schedulers.greedy import heuristic_line_broadcast
from repro.schedulers.search import (
    find_minimum_time_schedule,
    is_k_mlbg_exact,
    minimum_kline_rounds,
)
from repro.schedulers.store_forward import binomial_hypercube_broadcast

__all__ = [
    "find_minimum_time_schedule",
    "is_k_mlbg_exact",
    "minimum_kline_rounds",
    "heuristic_line_broadcast",
    "binomial_hypercube_broadcast",
]
