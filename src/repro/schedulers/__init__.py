"""Broadcast schedulers beyond the paper's closed-form schemes.

Every scheduler is a thin strategy over the shared engine
(:mod:`repro.engine.kernels`) and registers itself in the scheduler
registry (:mod:`repro.schedulers.registry`) — discover them with
``repro schedule --list`` or :func:`scheduler_names`, run them through
the common :class:`ScheduleRequest` / :class:`ScheduleResult` API with
:func:`run_scheduler`.  The historical entry points below remain as
facades over the same strategies.

``search``
    Exact branch-and-bound: finds a minimum-time k-line broadcast schedule
    or certifies none exists (small graphs).  Used to machine-check
    Definition-3 membership *independently* of the constructions' schemes,
    and to verify Theorem 1 trees exactly for small h.

``greedy``
    Randomized capacity-aware heuristic for larger instances (Theorem-1
    trees at larger h, baseline topologies).  Sound but incomplete: a
    returned schedule is always validated; a None return means "not
    found", never "impossible".

``store_forward``
    The k = 1 baseline: classic binomial-tree broadcast on the hypercube
    (the store-and-forward model the paper generalizes away from).

``multimsg_search``
    Exact multi-message broadcast search (M = 1 reduces to Definition-1
    broadcast; M > 1 answers the Kwon–Chwa pipelining question).

The pre-engine set-based implementations are retained verbatim in
:mod:`repro.schedulers.legacy` as the property-test oracle and the
benchmark baseline.
"""

from repro.schedulers.greedy import heuristic_line_broadcast
from repro.schedulers.multimsg_search import (
    find_multimessage_schedule,
    multimessage_lower_bound,
    validate_multimessage,
)
from repro.schedulers.registry import (
    ScheduleRequest,
    ScheduleResult,
    run_scheduler,
    scheduler_names,
)
from repro.schedulers.search import (
    find_minimum_time_schedule,
    is_k_mlbg_exact,
    minimum_kline_rounds,
)
from repro.schedulers.store_forward import binomial_hypercube_broadcast

__all__ = [
    "find_minimum_time_schedule",
    "find_multimessage_schedule",
    "is_k_mlbg_exact",
    "minimum_kline_rounds",
    "multimessage_lower_bound",
    "validate_multimessage",
    "heuristic_line_broadcast",
    "binomial_hypercube_broadcast",
    "ScheduleRequest",
    "ScheduleResult",
    "run_scheduler",
    "scheduler_names",
]
