"""Broadcast schedulers beyond the paper's closed-form schemes.

Every scheduler is a thin strategy over the shared engine
(:mod:`repro.engine.kernels`) and registers itself in the scheduler
registry (:mod:`repro.schedulers.registry`) — discover them with
``repro schedule --list`` or :func:`scheduler_names`, run them through
the common :class:`ScheduleRequest` / :class:`ScheduleResult` API with
:func:`run_scheduler`.

``search``
    Exact branch-and-bound: finds a minimum-time k-line broadcast schedule
    or certifies none exists (small graphs).  Used to machine-check
    Definition-3 membership *independently* of the constructions' schemes,
    and to verify Theorem 1 trees exactly for small h.

``greedy``
    Randomized capacity-aware heuristic for larger instances (Theorem-1
    trees at larger h, baseline topologies).  Sound but incomplete: a
    returned schedule is always validated; a None return means "not
    found", never "impossible".

``store_forward``
    The k = 1 baseline: classic binomial-tree broadcast on the hypercube
    (the store-and-forward model the paper generalizes away from).

``multimsg_search``
    Exact multi-message broadcast search (M = 1 reduces to Definition-1
    broadcast; M > 1 answers the Kwon–Chwa pipelining question).

The pre-registry function facades (``heuristic_line_broadcast``,
``find_minimum_time_schedule``, ``binomial_hypercube_broadcast``) are
**deprecated**: they bypass the registry's validation and provenance
digests.  Importing them from this package warns with
:class:`DeprecationWarning`; use ``run_scheduler("greedy" | "search" |
"store_forward", ScheduleRequest(...))`` instead (migration table in
CONTRIBUTING.md).  The multi-message trio
(``find_multimessage_schedule``, ``multimessage_lower_bound``,
``validate_multimessage``) and the analysis helpers
(``minimum_kline_rounds``, ``is_k_mlbg_exact``) remain first-class:
an M > 1 :class:`MultiMessageSchedule` is not a Definition-1 schedule,
so the registry cannot carry it.

The pre-engine set-based implementations are retained verbatim in
:mod:`repro.schedulers.legacy` as the property-test oracle and the
benchmark baseline.
"""

from typing import Any

from repro.schedulers.multimsg_search import (
    find_multimessage_schedule,
    multimessage_lower_bound,
    validate_multimessage,
)
from repro.schedulers.registry import (
    ScheduleRequest,
    ScheduleResult,
    run_scheduler,
    scheduler_names,
)
from repro.schedulers.search import (
    is_k_mlbg_exact,
    minimum_kline_rounds,
)

__all__ = [
    "find_minimum_time_schedule",
    "find_multimessage_schedule",
    "is_k_mlbg_exact",
    "minimum_kline_rounds",
    "multimessage_lower_bound",
    "validate_multimessage",
    "heuristic_line_broadcast",
    "binomial_hypercube_broadcast",
    "ScheduleRequest",
    "ScheduleResult",
    "run_scheduler",
    "scheduler_names",
]

# Deprecated pre-registry facade -> (defining submodule, registry strategy).
_DEPRECATED_FACADES = {
    "heuristic_line_broadcast": ("repro.schedulers.greedy", "greedy"),
    "find_minimum_time_schedule": ("repro.schedulers.search", "search"),
    "binomial_hypercube_broadcast": (
        "repro.schedulers.store_forward",
        "store_forward",
    ),
}


def __getattr__(name: str) -> Any:
    """Lazy access to the deprecated facades, with a migration warning.

    The functions still work exactly as before — the warning only says
    they bypass the registry (no validation, no provenance digest) and
    names the ``run_scheduler`` strategy that replaces them.
    """
    entry = _DEPRECATED_FACADES.get(name)
    if entry is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib
    import warnings

    module_name, strategy = entry
    warnings.warn(
        f"repro.schedulers.{name} is a deprecated pre-registry facade; "
        f'use run_scheduler("{strategy}", ScheduleRequest(...)) '
        "(see the migration table in CONTRIBUTING.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(module_name), name)
