"""The k = 1 (store-and-forward) baseline: binomial broadcast on ``Q_n``.

Under 1-line communication (each vertex calls one *neighbour* per round),
the binary n-cube broadcasts in exactly n = log₂N rounds by the classic
binomial-tree schedule: in round t every informed vertex calls its
neighbour across dimension ``n − t + 1``.  This is the minimum-time
property the paper's constructions *preserve* while deleting edges —
experiment E16 contrasts Δ(Q_n) = n at k = 1 against the sparse
hypercube's Δ = O(ᵏ√n) at k ≥ 2, and shows the sparse hypercube is *not*
a 1-mlbg (the deleted dimension edges are irreplaceable at k = 1).
"""

from __future__ import annotations

from repro.frame import ScheduleBuilder
from repro.graphs.base import Graph
from repro.schedulers.registry import ScheduleRequest, scheduler
from repro.types import InvalidParameterError, Schedule
from repro.util.bits import flip_dim

__all__ = ["binomial_hypercube_broadcast", "dimension_order_broadcast"]


def binomial_hypercube_broadcast(n: int, source: int) -> Schedule:
    """The classic binomial broadcast schedule on ``Q_n`` from ``source``.

    Round t (1-indexed) has every informed vertex call across dimension
    ``n − t + 1``; all calls are length-1 hypercube edges, trivially
    edge-disjoint (distinct dimensions per round partition the cube).
    """
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    if not (0 <= source < (1 << n)):
        raise InvalidParameterError(f"source {source} not a vertex of Q_{n}")
    return dimension_order_broadcast(n, source, list(range(n, 0, -1)))


def dimension_order_broadcast(n: int, source: int, dims: list[int]) -> Schedule:
    """Binomial broadcast using an arbitrary permutation of dimensions.

    Any permutation works on the complete cube — a property tests exercise;
    the sparse hypercube's Phase-2 uses the descending order on its core
    dims only.
    """
    if sorted(dims) != list(range(1, n + 1)):
        raise InvalidParameterError(f"dims must be a permutation of 1..{n}, got {dims}")
    builder = ScheduleBuilder(source)
    informed = [source]
    for dim in dims:
        paths = [(w, flip_dim(w, dim)) for w in sorted(informed)]
        builder.add_round(paths)
        informed.extend(p[-1] for p in paths)
    return Schedule.from_frame(builder.build())


def hypercube_graph_for(n: int) -> Graph:
    """Convenience: the graph the schedules above run on."""
    from repro.graphs.hypercube import hypercube

    return hypercube(n)


@scheduler("store_forward", "binomial k=1 broadcast (complete hypercubes only)")
def _store_forward_strategy(request: ScheduleRequest) -> tuple[Schedule | None, dict]:
    if request.params:
        raise InvalidParameterError(
            f"store_forward: unknown params {sorted(request.params)}"
        )
    graph = request.graph
    size = graph.n_vertices
    n = size.bit_length() - 1
    if size < 2 or size != (1 << n):
        raise InvalidParameterError(
            f"store_forward needs a complete hypercube, got N={size}"
        )
    if graph.n_edges != n * (1 << (n - 1)) or any(
        (u ^ v).bit_count() != 1 for u, v in graph.edges()
    ):
        raise InvalidParameterError(
            "store_forward needs a complete hypercube "
            f"(N={size} vertices but the edges are not Q_{n}'s)"
        )
    if request.rounds is not None and request.rounds < n:
        return None, {"dimensions": n, "reason": f"Q_{n} needs {n} rounds at k=1"}
    return binomial_hypercube_broadcast(n, request.source), {"dimensions": n}
