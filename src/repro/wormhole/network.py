"""A small cycle-accurate wormhole network simulator.

Model (single virtual channel per link, as in Definition 1's exclusive
edges):

* a **worm** is a message of ``flits`` flits following a fixed path;
* at cycle t the head flit may advance one link if that link is free;
  body flits follow one link behind — a worm of F flits with a path of L
  links, admitted at cycle 0 with no contention, drains its tail at cycle
  ``L + F − 1``;
* a link is held from the cycle the head crosses it until the tail has
  crossed it (wormhole channel holding);
* worms are admitted at their scheduled start cycle; if the first link is
  busy the head blocks in the source's injection queue (and, mid-path,
  worms block *in place*, holding their acquired channels — the classic
  wormhole behaviour that makes contention expensive).

The simulator is deliberately simple (no virtual channels, deterministic
lowest-id arbitration) — enough to execute k-line schedules, which are
contention-free within a round by construction, and to demonstrate
blocking when they are not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.base import Graph
from repro.types import Edge, InvalidParameterError, canonical_edge

__all__ = ["Worm", "FlitEvent", "WormholeNetwork"]


@dataclass
class Worm:
    """One message in flight."""

    worm_id: int
    path: tuple[int, ...]
    flits: int
    start_cycle: int
    # progress: index of the link the head will try to cross next
    head_link: int = 0
    # how many flits have fully crossed the final link
    drained: int = 0
    head_arrival: int | None = None  # cycle the head reached the receiver
    tail_arrival: int | None = None  # cycle the tail drained (completion)

    @property
    def n_links(self) -> int:
        return len(self.path) - 1

    def link(self, idx: int) -> Edge:
        return canonical_edge(self.path[idx], self.path[idx + 1])

    @property
    def done(self) -> bool:
        return self.tail_arrival is not None


@dataclass(frozen=True)
class FlitEvent:
    """Trace record: a head-flit link crossing (for tests/diagnostics)."""

    cycle: int
    worm_id: int
    edge: Edge


class WormholeNetwork:
    """Cycle-stepped executor for a set of worms on a graph."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.worms: list[Worm] = []
        self.trace: list[FlitEvent] = []

    def add_worm(self, path: tuple[int, ...], flits: int, start_cycle: int = 0) -> Worm:
        if flits < 1:
            raise InvalidParameterError(f"a message needs >= 1 flit, got {flits}")
        if not self.graph.path_is_valid(path):
            raise InvalidParameterError(f"worm path {path} is not a path")
        worm = Worm(
            worm_id=len(self.worms), path=tuple(path), flits=flits,
            start_cycle=start_cycle,
        )
        self.worms.append(worm)
        return worm

    def run(self, max_cycles: int = 1_000_000) -> int:
        """Advance cycles until all worms drain; returns the final cycle.

        Channel holding: a link is busy while any worm's flit window spans
        it.  We track, per link, the id of the worm holding it (a worm
        holds links [tail_link, head_link)); heads advance in worm-id
        order (deterministic arbitration).
        """
        held: dict[Edge, int] = {}
        cycle = 0
        pending = [w for w in self.worms]
        while any(not w.done for w in pending):
            cycle += 1
            if cycle > max_cycles:
                raise InvalidParameterError(
                    f"wormhole simulation exceeded {max_cycles} cycles — "
                    "deadlock or runaway contention"
                )
            for worm in pending:
                if worm.done or cycle <= worm.start_cycle:
                    continue
                # 1. try to advance the head one link
                if worm.head_link < worm.n_links:
                    edge = worm.link(worm.head_link)
                    holder = held.get(edge)
                    if holder is None or holder == worm.worm_id:
                        held[edge] = worm.worm_id
                        worm.head_link += 1
                        self.trace.append(FlitEvent(cycle, worm.worm_id, edge))
                        if worm.head_link == worm.n_links:
                            # head arrival delivers the first flit
                            worm.head_arrival = cycle
                            worm.drained = 1
                            if worm.drained == worm.flits:
                                self._complete(worm, held, cycle)
                    # blocked heads hold what they have (wormhole)
                elif worm.drained < worm.flits:
                    # 2. body flits pipeline in, one per cycle
                    worm.drained += 1
                    if worm.drained == worm.flits:
                        self._complete(worm, held, cycle)
        return cycle

    def _complete(self, worm: Worm, held: dict[Edge, int], cycle: int) -> None:
        """Tail drained: record completion and release held channels."""
        worm.tail_arrival = cycle
        for j in range(worm.n_links):
            e = worm.link(j)
            if held.get(e) == worm.worm_id:
                del held[e]

    # -- analytic helpers -------------------------------------------------------

    @staticmethod
    def uncontended_latency(n_links: int, flits: int) -> int:
        """Pipelined latency of one worm on a free path: L + F − 1."""
        if n_links < 1 or flits < 1:
            raise InvalidParameterError("need n_links >= 1 and flits >= 1")
        return n_links + flits - 1
