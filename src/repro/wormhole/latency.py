"""Mapping k-line broadcast schedules onto the wormhole network.

A k-line round is a set of edge-disjoint calls; executed as wormhole
worms, each is uncontended, so a round with longest call ℓ and F-flit
messages lasts ``ℓ + F − 1`` cycles (verified cycle-accurately by the
simulator, not assumed).  The schedule's total latency is the sum of its
round durations — rounds are barriers, matching the paper's global-clock
model.

This realizes the paper's implicit engineering claim: the sparse
hypercube trades a *small additive* per-round cost (k − 1 extra cycles)
for a large multiplicative degree saving, and the overhead fraction
vanishes as messages grow (the pipelining argument behind wormhole
routing [7]).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.base import Graph
from repro.types import Schedule
from repro.wormhole.network import WormholeNetwork

__all__ = ["RoundLatency", "schedule_latency"]


@dataclass(frozen=True)
class RoundLatency:
    round_index: int
    calls: int
    longest_call: int
    cycles: int


@dataclass(frozen=True)
class ScheduleLatency:
    rounds: tuple[RoundLatency, ...]
    total_cycles: int
    message_flits: int

    @property
    def analytic_total(self) -> int:
        """Σ (ℓ_r + F − 1) — must equal ``total_cycles`` for valid
        (contention-free) schedules; the simulator check is the test."""
        return sum(r.cycles for r in self.rounds)


def schedule_latency(
    graph: Graph, schedule: Schedule, message_flits: int
) -> ScheduleLatency:
    """Cycle-accurate latency of a k-line broadcast with F-flit messages.

    Each round is simulated independently (rounds are synchronous
    barriers).  Raises if a round's worms contend — which for a valid
    schedule cannot happen (edge-disjointness == contention-freedom);
    feeding an invalid schedule here is how the tests demonstrate
    wormhole blocking.
    """
    per_round: list[RoundLatency] = []
    total = 0
    for idx, rnd in enumerate(schedule.rounds, start=1):
        if len(rnd) == 0:
            per_round.append(RoundLatency(idx, 0, 0, 0))
            continue
        net = WormholeNetwork(graph)
        for call in rnd:
            net.add_worm(call.path, message_flits)
        cycles = net.run()
        longest = max(c.length for c in rnd)
        per_round.append(RoundLatency(idx, len(rnd), longest, cycles))
        total += cycles
    return ScheduleLatency(
        rounds=tuple(per_round), total_cycles=total, message_flits=message_flits
    )
