"""Flit-level wormhole-routing substrate (the hardware model behind k-line).

The paper grounds its line-communication model in circuit switching and
wormhole routing (Dally & Seitz [7]): a call of length ℓ holds a channel
on each of its ℓ links while the message's flits pipeline through.  This
package makes that concrete:

* :class:`WormholeNetwork` — a cycle-accurate simulator: messages are flit
  streams; each link carries one flit per cycle per virtual channel; a
  call's worm occupies its path until the tail flit drains.
* :func:`schedule_latency` — maps a k-line broadcast schedule onto the
  wormhole network round by round and reports the cycle count, using the
  standard pipelined latency ``path_length + message_flits − 1`` per call
  and edge-contention checking per round.

This quantifies the engineering trade the introduction motivates: a
sparse hypercube's rounds are slightly longer (calls traverse up to k
links) but there are the same ⌈log₂N⌉ of them — experiment E21 reports
cycle totals for Q_n at k = 1 versus sparse hypercubes at k ≥ 2 across
message sizes, exhibiting the crossover as messages grow (pipelining
amortizes path length).
"""

from repro.wormhole.network import FlitEvent, WormholeNetwork
from repro.wormhole.latency import RoundLatency, schedule_latency

__all__ = ["WormholeNetwork", "FlitEvent", "schedule_latency", "RoundLatency"]
