"""Multiple-message broadcast by pipelining (the [24] extension).

The paper cites Kwon & Chwa's *multiple messages broadcasting* as related
work on the unbounded-k end of the spectrum.  Here we study the natural
pipelined strategy on sparse hypercubes: the source must deliver M
distinct messages to everyone; message t runs the single-message scheme
``Broadcast_k`` delayed by ``t·d`` rounds, and rounds that coincide are
merged.  The pipeline is **valid** iff every merged round still satisfies
Definition 1 — checked, not assumed.

Facts the tests/experiment establish:

* stagger d = 1 is *invalid* in general: round r of message t and round
  r + d of message t−1 both operate inside the same high-dimension
  subcubes and collide on edges;
* there is always a finite minimal valid stagger d*(G) ≤ number of
  rounds (d = n serializes the broadcasts); the experiment reports the
  measured d* per construction;
* with stagger d, M messages finish in ``n + (M − 1)·d*`` rounds versus
  ``M·n`` for serial broadcast — the throughput win reported in E22.

One subtlety: Definition 1 forbids a vertex *receiving* twice in a round
but allows it to call while receiving nothing else; in the pipelined
setting a vertex may need to forward message t−1 while receiving message
t.  That is legal (distinct calls, one reception), but the same vertex may
not place two calls in one round — the real constraint that drives d* up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.broadcast import broadcast_schedule
from repro.core.sparse_hypercube import SparseHypercube
from repro.graphs.base import Graph
from repro.types import Call, InvalidParameterError, Round, Schedule

__all__ = ["PipelinedBroadcast", "pipeline_schedules", "minimal_valid_stagger"]


@dataclass
class PipelinedBroadcast:
    """The merged multi-message schedule plus per-message metadata."""

    source: int
    n_messages: int
    stagger: int
    rounds: list[Round]
    message_rounds: list[Schedule]

    @property
    def total_rounds(self) -> int:
        return len(self.rounds)


def pipeline_schedules(
    base: Schedule, n_messages: int, stagger: int
) -> PipelinedBroadcast:
    """Merge ``n_messages`` copies of ``base``, copy t delayed t·stagger."""
    if n_messages < 1:
        raise InvalidParameterError(f"need >= 1 message, got {n_messages}")
    if stagger < 1:
        raise InvalidParameterError(f"need stagger >= 1, got {stagger}")
    length = len(base.rounds) + (n_messages - 1) * stagger
    merged: list[list[Call]] = [[] for _ in range(length)]
    for t in range(n_messages):
        for r, rnd in enumerate(base.rounds):
            merged[t * stagger + r].extend(rnd.calls)
    return PipelinedBroadcast(
        source=base.source,
        n_messages=n_messages,
        stagger=stagger,
        rounds=[Round(tuple(calls)) for calls in merged],
        message_rounds=[base] * n_messages,
    )


def _pipeline_valid(graph: Graph, pipe: PipelinedBroadcast, k: int) -> bool:
    """Check every merged round for Definition-1 conflicts.

    Message copies are independent broadcasts of *different* messages, so
    the per-message "receiver already informed" condition does not apply
    across copies; we check the physical constraints only: path validity,
    length, edge-disjointness, one call placed per vertex, one reception
    per vertex.
    """
    base = pipe.message_rounds[0]
    # informed sets per message copy, advanced as rounds execute
    informed = [set([pipe.source]) for _ in range(pipe.n_messages)]
    for global_r, rnd in enumerate(pipe.rounds):
        # physical checks on the merged round: use a permissive informed
        # set (union) for caller checks, then handle receivers manually
        callers: set[int] = set()
        receivers: set[int] = set()
        used_edges: set[tuple[int, int]] = set()
        for call in rnd:
            if not graph.path_is_valid(call.path) or call.length > k:
                return False
            if call.source in callers or call.receiver in receivers:
                return False
            callers.add(call.source)
            receivers.add(call.receiver)
            for e in call.edges():
                if e in used_edges:
                    return False
                used_edges.add(e)
        # per-message logical checks: the calls of copy t in this round
        for t in range(pipe.n_messages):
            local_r = global_r - t * pipe.stagger
            if 0 <= local_r < len(base.rounds):
                for call in base.rounds[local_r]:
                    if call.source not in informed[t]:
                        return False
                    informed[t].add(call.receiver)
    return all(len(s) == graph.n_vertices for s in informed)


def minimal_valid_stagger(
    sh: SparseHypercube,
    source: int,
    *,
    n_messages: int = 2,
    max_stagger: int | None = None,
) -> int:
    """The least d such that the d-staggered pipeline is conflict-free.

    Always terminates: d = len(schedule) serializes the messages.
    """
    base = broadcast_schedule(sh, source)
    graph = sh.graph
    hi = max_stagger if max_stagger is not None else len(base.rounds)
    for d in range(1, hi + 1):
        pipe = pipeline_schedules(base, n_messages, d)
        if _pipeline_valid(graph, pipe, sh.k):
            return d
    raise InvalidParameterError(
        f"no valid stagger up to {hi} — schedule conflicts with itself?"
    )
