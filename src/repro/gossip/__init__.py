"""Gossip (all-to-all exchange) under the k-line model — §5 future work.

The paper closes by proposing minimum-time *gossip* graphs under k-line
communication as a research direction (citing Fraigniaud & Peters'
minimum linear gossip graphs [17]).  This package implements the natural
model: a round is a set of pairwise edge-disjoint *exchanges*; an exchange
establishes a circuit (a path of length ≤ k) between two endpoints which
then swap their full token sets; a vertex can be an endpoint of at most
one exchange per round but may switch any number of circuits through it.

Since each vertex's token set can at most double per round, gossip takes
at least ⌈log₂N⌉ rounds.  Provided here:

* :func:`hypercube_gossip` — the classic dimension sweep on Q_n
  (n rounds at k = 1, optimal for N = 2^n);
* :func:`sparse_hypercube_gossip` — a dimension sweep on
  ``Construct_BASE`` graphs where missing dimension edges are replaced by
  length-3 relay circuits, grouped into conflict-free sub-rounds;
* a validator that replays token sets and enforces the exchange model.

The measured result (experiment E17): the sparse hypercube still gossips,
at k = 3, but pays a ~λ× round-count factor — sparseness is much more
expensive for gossip than for broadcast, quantifying why the paper flags
gossip as a separate open problem.
"""

from repro.gossip.exchange import Exchange, GossipSchedule
from repro.gossip.schemes import hypercube_gossip, sparse_hypercube_gossip
from repro.gossip.validator import (
    GossipReport,
    minimum_gossip_rounds,
    validate_gossip,
)

__all__ = [
    "Exchange",
    "GossipSchedule",
    "hypercube_gossip",
    "sparse_hypercube_gossip",
    "validate_gossip",
    "GossipReport",
    "minimum_gossip_rounds",
]
