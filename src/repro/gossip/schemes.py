"""Gossip schemes: the hypercube dimension sweep and its sparse variant.

The classic result: on ``Q_n``, pairing every vertex with its neighbour
across dimension i and exchanging, for i = 1..n, completes gossip in
n = log₂N rounds — optimal — with length-1 calls.

On a sparse hypercube (``Construct_BASE(n, m)``) the dimension-i edges for
i > m exist only at vertices whose label owns i.  The pairs that lost
their edge exchange over the **relay circuit**

    u → ⊕_j u → ⊕_i ⊕_j u → ⊕_i u          (length 3)

where j is a core dimension giving ``⊕_j u`` the owning label (Condition
A).  Relay circuits can collide on their middle (dimension-i) edge, so a
dimension's exchanges are grouped into conflict-free sub-rounds:

* one sub-round for the direct pairs, and
* one sub-round per distinct relay dimension j — within one group the
  middle edges ``{⊕_j u, ⊕_i ⊕_j u}`` are distinct because ``u ↦ ⊕_j u``
  is injective, and a first/last edge of one circuit cannot equal the
  last/first of another in the same group (that would force the other
  endpoint to carry the owning label, i.e. be a direct pair).

The round-count cost is measured in experiment E17.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.sparse_hypercube import SparseHypercube
from repro.core.routing import relay_candidates
from repro.gossip.exchange import Exchange, GossipSchedule
from repro.types import InvalidParameterError
from repro.util.bits import flip_dim

__all__ = ["hypercube_gossip", "sparse_hypercube_gossip"]


def hypercube_gossip(n: int) -> GossipSchedule:
    """The dimension-sweep gossip on ``Q_n``: n rounds of perfect matchings."""
    if n < 1:
        raise InvalidParameterError(f"need n >= 1, got {n}")
    schedule = GossipSchedule()
    for i in range(1, n + 1):
        bit = 1 << (i - 1)
        exchanges = [Exchange((u, u | bit)) for u in range(1 << n) if not (u & bit)]
        schedule.append_round(exchanges)
    return schedule


def sparse_hypercube_gossip(sh: SparseHypercube) -> GossipSchedule:
    """Dimension-sweep gossip on a ``Construct_BASE`` sparse hypercube.

    Only base constructions (k = 2) are supported: their relay circuits
    have the closed length-3 form above.  (Recursive constructions would
    need nested relays; the open-problem flavour of §5 starts exactly
    here.)
    """
    if sh.k != 2:
        raise InvalidParameterError(
            "sparse gossip is implemented for Construct_BASE graphs (k=2)"
        )
    level = sh.levels[0]
    schedule = GossipSchedule()
    # high dimensions: direct sub-round + one sub-round per relay dim j
    for i in range(sh.n, sh.base_dims, -1):
        bit = 1 << (i - 1)
        direct: list[Exchange] = []
        relay_groups: dict[int, list[Exchange]] = defaultdict(list)
        for u in range(sh.n_vertices):
            if u & bit:
                continue  # enumerate each pair once, from its low endpoint
            if level.owns_edge(u, i):
                direct.append(Exchange((u, u | bit)))
            else:
                # deterministic relay dim (largest relay vertex id, as in
                # reach_and_flip)
                cands = relay_candidates(sh, u, i)
                _, j = max((flip_dim(u, d), d) for d in cands)
                mid1 = flip_dim(u, j)
                mid2 = flip_dim(mid1, i)
                partner = flip_dim(mid2, j)
                assert partner == flip_dim(u, i)
                relay_groups[j].append(Exchange((u, mid1, mid2, partner)))
        schedule.append_round(direct)
        for j in sorted(relay_groups):
            schedule.append_round(relay_groups[j])
    # core dimensions: complete matchings, one round each
    for i in range(sh.base_dims, 0, -1):
        bit = 1 << (i - 1)
        schedule.append_round(
            [Exchange((u, u | bit)) for u in range(sh.n_vertices) if not (u & bit)]
        )
    return schedule
