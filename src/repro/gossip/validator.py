"""Validation and token replay for k-line gossip schedules."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.gossip.exchange import GossipSchedule
from repro.graphs.base import Graph
from repro.types import Edge

__all__ = ["GossipReport", "validate_gossip", "minimum_gossip_rounds"]


def minimum_gossip_rounds(n_vertices: int) -> int:
    """⌈log₂N⌉ — token sets at most double per round."""
    return math.ceil(math.log2(n_vertices)) if n_vertices > 1 else 0


@dataclass
class GossipReport:
    ok: bool
    errors: list[str] = field(default_factory=list)
    rounds: int = 0
    complete: bool = False
    min_tokens_per_round: list[int] = field(default_factory=list)

    def raise_if_invalid(self) -> None:
        if not self.ok:
            raise AssertionError("; ".join(self.errors[:10]))


def validate_gossip(
    graph: Graph,
    schedule: GossipSchedule,
    k: int,
    *,
    require_minimum_time: bool = False,
) -> GossipReport:
    """Check a gossip schedule against the k-line exchange model.

    Per round: every exchange path is a path of the graph with length ≤ k;
    exchanges are pairwise edge-disjoint; every vertex is an endpoint of at
    most one exchange.  Globally: after the last round every vertex holds
    every token (tracked by exact replay with bitmask token sets).
    """
    report = GossipReport(ok=True, rounds=schedule.num_rounds)
    n = graph.n_vertices
    tokens = [1 << v for v in range(n)]
    full = (1 << n) - 1
    for idx, rnd in enumerate(schedule.rounds, start=1):
        used_edges: set[Edge] = set()
        endpoints: set[int] = set()
        updates: list[tuple[int, int, int]] = []
        for ex in rnd:
            tag = f"round {idx}, exchange {ex.a}<->{ex.b}"
            if not graph.path_is_valid(ex.path):
                report.errors.append(f"{tag}: not a path of the graph")
                continue
            if ex.length > k:
                report.errors.append(f"{tag}: length {ex.length} exceeds k={k}")
            for v in ex.endpoints():
                if v in endpoints:
                    report.errors.append(f"{tag}: endpoint {v} already busy")
                endpoints.add(v)
            for e in ex.edges():
                if e in used_edges:
                    report.errors.append(f"{tag}: edge {e} already in use")
                used_edges.add(e)
            merged = tokens[ex.a] | tokens[ex.b]
            updates.append((ex.a, ex.b, merged))
        for a, b, merged in updates:  # simultaneous semantics
            tokens[a] = merged
            tokens[b] = merged
        report.min_tokens_per_round.append(min(int(t).bit_count() for t in tokens))
    report.complete = all(t == full for t in tokens)
    if not report.complete:
        missing = sum(1 for t in tokens if t != full)
        report.errors.append(f"gossip incomplete: {missing} vertices lack tokens")
    if require_minimum_time and schedule.num_rounds != minimum_gossip_rounds(n):
        report.errors.append(
            f"{schedule.num_rounds} rounds vs minimum {minimum_gossip_rounds(n)}"
        )
    report.ok = not report.errors
    return report
