"""Datatypes for k-line gossip: exchanges and gossip schedules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.types import Edge, InvalidScheduleError, canonical_edge

__all__ = ["Exchange", "GossipRound", "GossipSchedule"]


@dataclass(frozen=True)
class Exchange:
    """A bidirectional token exchange along an established circuit.

    Both endpoints send their full token set to the other; intermediate
    vertices only switch the circuit (they learn nothing).
    """

    path: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise InvalidScheduleError(
                f"an exchange needs two distinct endpoints, got {self.path!r}"
            )
        if self.path[0] == self.path[-1]:
            raise InvalidScheduleError("exchange endpoints must differ")

    @property
    def a(self) -> int:
        return self.path[0]

    @property
    def b(self) -> int:
        return self.path[-1]

    @property
    def length(self) -> int:
        return len(self.path) - 1

    def edges(self) -> list[Edge]:
        return [canonical_edge(x, y) for x, y in zip(self.path, self.path[1:])]

    def endpoints(self) -> tuple[int, int]:
        return (self.a, self.b)


@dataclass(frozen=True)
class GossipRound:
    exchanges: tuple[Exchange, ...]

    def __iter__(self) -> Iterator[Exchange]:
        return iter(self.exchanges)

    def __len__(self) -> int:
        return len(self.exchanges)


@dataclass
class GossipSchedule:
    """An ordered list of gossip rounds (no distinguished source)."""

    rounds: list[GossipRound] = field(default_factory=list)

    def append_round(self, exchanges: Sequence[Exchange]) -> None:
        self.rounds.append(GossipRound(tuple(exchanges)))

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def num_exchanges(self) -> int:
        return sum(len(r) for r in self.rounds)

    def max_exchange_length(self) -> int:
        return max((e.length for r in self.rounds for e in r), default=0)
