"""``python -m repro`` — run the experiment CLI."""

from repro.cli import main

raise SystemExit(main())
