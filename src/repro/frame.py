"""Columnar schedule core: the library's canonical interchange format.

The paper's object of study (Definition 1) is the broadcast schedule —
rounds of edge-disjoint k-bounded calls.  Historically the canonical
representation was :class:`repro.types.Schedule`, a list of rounds of
frozen ``Call`` dataclasses, and every fast consumer (the bitset
validator, the batch engine, the campaign drivers) re-flattened it into
NumPy arrays on each use.  :class:`ScheduleFrame` makes the arrays the
*primary* representation, CSR-style, mirroring ``Graph.csr_arrays()``:

``path_verts``
    one flat ``int64`` row holding every call's full vertex path,
    concatenated in round order then call order;
``call_offsets``
    ``n_calls + 1`` offsets into ``path_verts`` — call ``c`` traverses
    ``path_verts[call_offsets[c]:call_offsets[c + 1]]``;
``round_offsets``
    ``n_rounds + 1`` offsets into the *call* axis — round ``r`` owns
    calls ``round_offsets[r]:round_offsets[r + 1]``;
``source``
    the broadcasting vertex.

Frames are frozen: the dataclass is immutable and every array is marked
read-only, so a frame can be shared between validators, caches, and
processes without defensive copies.  Producers that grow a schedule
round by round use :class:`ScheduleBuilder` (mutate the builder, not the
result).  The object API survives as views: ``Schedule.from_frame``
wraps a frame without materializing a single ``Call``, and conversion in
both directions is lossless (property-pinned by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

import numpy as np
import numpy.typing as npt

from repro.types import InvalidParameterError, InvalidScheduleError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types ↔ frame)
    from repro.types import Call, Schedule

__all__ = ["ScheduleFrame", "ScheduleBuilder", "as_frame", "as_schedule"]

IntArray = npt.NDArray[np.int64]


def _frozen_array(values: npt.ArrayLike, dtype: npt.DTypeLike = np.int64) -> IntArray:
    arr = np.ascontiguousarray(values, dtype=dtype)
    arr.setflags(write=False)
    return arr


@dataclass(frozen=True, eq=False)
class ScheduleFrame:
    """A complete broadcast schedule as frozen columnar call arrays."""

    source: int
    path_verts: IntArray
    call_offsets: IntArray
    round_offsets: IntArray

    def __post_init__(self) -> None:
        object.__setattr__(self, "source", int(self.source))
        object.__setattr__(self, "path_verts", _frozen_array(self.path_verts))
        object.__setattr__(self, "call_offsets", _frozen_array(self.call_offsets))
        object.__setattr__(self, "round_offsets", _frozen_array(self.round_offsets))
        self._check_offsets(self.call_offsets, self.path_verts.size, "call_offsets")
        self._check_offsets(
            self.round_offsets, self.call_offsets.size - 1, "round_offsets"
        )
        if (np.diff(self.call_offsets) < 2).any():
            raise InvalidScheduleError(
                "a call must traverse at least one edge "
                "(every call_offsets span needs >= 2 path vertices)"
            )

    @staticmethod
    def _check_offsets(offsets: IntArray, end: int, name: str) -> None:
        if offsets.ndim != 1 or offsets.size < 1:
            raise InvalidParameterError(f"{name} must be a non-empty 1-d array")
        if int(offsets[0]) != 0 or int(offsets[-1]) != end:
            raise InvalidParameterError(
                f"{name} must run from 0 to {end}, got "
                f"[{int(offsets[0])}, {int(offsets[-1])}]"
            )
        if (np.diff(offsets) < 0).any():
            raise InvalidParameterError(f"{name} must be non-decreasing")

    # -- shape --------------------------------------------------------------

    @property
    def n_rounds(self) -> int:
        return int(self.round_offsets.size - 1)

    @property
    def n_calls(self) -> int:
        return int(self.call_offsets.size - 1)

    @property
    def n_items(self) -> int:
        return int(self.path_verts.size)

    def __len__(self) -> int:
        return self.n_rounds

    # -- columnar accessors (no per-call objects) ---------------------------

    def call_lengths(self) -> IntArray:
        """Edge count of every call (``len(path) - 1``), in frame order."""
        return np.diff(self.call_offsets) - 1

    def call_counts(self) -> IntArray:
        """Number of calls in every round."""
        return np.diff(self.round_offsets)

    def callers(self) -> IntArray:
        """The vertex placing each call, in frame order."""
        return self.path_verts[self.call_offsets[:-1]]

    def receivers(self) -> IntArray:
        """The vertex receiving each call, in frame order."""
        return self.path_verts[self.call_offsets[1:] - 1]

    def max_call_length(self) -> int:
        lengths = self.call_lengths()
        return int(lengths.max()) if lengths.size else 0

    def round_slice(self, r: int) -> tuple[int, int]:
        """The call range ``[c0, c1)`` owned by round ``r``."""
        return int(self.round_offsets[r]), int(self.round_offsets[r + 1])

    def call_path(self, c: int) -> tuple[int, ...]:
        """Call ``c``'s vertex path as a tuple (materializing accessor)."""
        c0, c1 = int(self.call_offsets[c]), int(self.call_offsets[c + 1])
        return tuple(int(v) for v in self.path_verts[c0:c1])

    def round_paths(self, r: int) -> list[tuple[int, ...]]:
        """All call paths of round ``r`` (materializing accessor)."""
        c0, c1 = self.round_slice(r)
        return [self.call_path(c) for c in range(c0, c1)]

    def iter_round_paths(self) -> Iterator[list[tuple[int, ...]]]:
        for r in range(self.n_rounds):
            yield self.round_paths(r)

    def informed_after(self, t: int) -> set[int]:
        """Vertices informed after the first ``t`` rounds (source included).

        Replays receivers without checking feasibility, like
        :meth:`repro.types.Schedule.informed_after`; ``t`` follows Python
        slice semantics exactly (negative counts from the end), so the
        frame and the object view always agree.
        """
        t = slice(t).indices(self.n_rounds)[1]
        c1 = int(self.round_offsets[t])
        received = self.path_verts[self.call_offsets[1 : c1 + 1] - 1]
        return {self.source, *received.tolist()}

    # -- identity -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScheduleFrame):
            return NotImplemented
        return (
            self.source == other.source
            and np.array_equal(self.round_offsets, other.round_offsets)
            and np.array_equal(self.call_offsets, other.call_offsets)
            and np.array_equal(self.path_verts, other.path_verts)
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.source,
                self.path_verts.tobytes(),
                self.call_offsets.tobytes(),
                self.round_offsets.tobytes(),
            )
        )

    def __repr__(self) -> str:
        return (
            f"ScheduleFrame(source={self.source}, rounds={self.n_rounds}, "
            f"calls={self.n_calls}, items={self.n_items})"
        )

    # Validators cache derived state on the frame (its layout, a
    # per-graph screen holding a weakref); none of it belongs in a
    # serialized frame, so pickling carries the four fields only.
    def __getstate__(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "path_verts": self.path_verts,
            "call_offsets": self.call_offsets,
            "round_offsets": self.round_offsets,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        for name, value in state.items():
            if isinstance(value, np.ndarray):
                value.setflags(write=False)  # pickling drops the flag
            object.__setattr__(self, name, value)

    # -- conversions --------------------------------------------------------

    @staticmethod
    def from_paths(
        source: int, rounds: Iterable[Iterable[Sequence[int]]]
    ) -> "ScheduleFrame":
        """Build a frame from nested per-round call paths."""
        builder = ScheduleBuilder(source)
        for paths in rounds:
            builder.add_round(paths)
        return builder.build()

    @staticmethod
    def from_schedule(schedule: "Schedule") -> "ScheduleFrame":
        """The columnar form of an object schedule (lossless)."""
        cached = schedule.frame_or_none()
        if cached is not None:
            return cached
        return ScheduleFrame.from_paths(
            schedule.source,
            ([c.path for c in rnd] for rnd in schedule.rounds),
        )

    def to_schedule(self) -> "Schedule":
        """A frozen object view over this frame (rounds materialize lazily)."""
        from repro.types import Schedule

        return Schedule.from_frame(self)


class ScheduleBuilder:
    """Mutable accumulator for :class:`ScheduleFrame` construction.

    Producers append whole rounds of call paths; :meth:`build` snapshots
    the arrays into a frozen frame (the builder stays usable, so partial
    schedules can be frozen mid-construction if needed).
    """

    def __init__(self, source: int) -> None:
        self.source = int(source)
        self._flat: list[int] = []
        self._call_offsets: list[int] = [0]
        self._round_offsets: list[int] = [0]

    @property
    def n_rounds(self) -> int:
        return len(self._round_offsets) - 1

    @property
    def n_calls(self) -> int:
        return len(self._call_offsets) - 1

    def add_round(self, paths: Iterable[Sequence[int]]) -> None:
        """Append one round of call paths (each a vertex sequence)."""
        for path in paths:
            if len(path) < 2:
                raise InvalidScheduleError(
                    f"a call must traverse at least one edge, got path "
                    f"{tuple(path)!r}"
                )
            self._flat.extend(int(v) for v in path)
            self._call_offsets.append(len(self._flat))
        self._round_offsets.append(self.n_calls)

    def add_call_round(self, calls: Iterable["Call"]) -> None:
        """Append one round given ``Call`` objects (compat shim)."""
        self.add_round([c.path for c in calls])

    def build(self) -> ScheduleFrame:
        """Snapshot the accumulated rounds into a frozen frame."""
        return ScheduleFrame(
            source=self.source,
            path_verts=np.fromiter(self._flat, dtype=np.int64, count=len(self._flat)),
            call_offsets=np.fromiter(
                self._call_offsets, dtype=np.int64, count=len(self._call_offsets)
            ),
            round_offsets=np.fromiter(
                self._round_offsets, dtype=np.int64, count=len(self._round_offsets)
            ),
        )


def as_frame(schedule: "Schedule | ScheduleFrame") -> ScheduleFrame:
    """Coerce a ``Schedule`` or ``ScheduleFrame`` to a frame (lossless)."""
    if isinstance(schedule, ScheduleFrame):
        return schedule
    if getattr(schedule, "to_frame", None) is None:
        raise InvalidParameterError(
            f"expected a Schedule or ScheduleFrame, got {type(schedule).__name__}"
        )
    return schedule.to_frame()


def as_schedule(schedule: "Schedule | ScheduleFrame") -> "Schedule":
    """Coerce a ``Schedule`` or ``ScheduleFrame`` to the object view."""
    if isinstance(schedule, ScheduleFrame):
        return schedule.to_schedule()
    if hasattr(schedule, "rounds"):
        return schedule
    raise InvalidParameterError(
        f"expected a Schedule or ScheduleFrame, got {type(schedule).__name__}"
    )
