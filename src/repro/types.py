"""Core datatypes shared across the library.

The paper's communication model (Definition 1) is about *calls*: during a
synchronous time unit a vertex may call one other vertex at distance at most
``k``, and simultaneous calls must be pairwise edge-disjoint and must not
share a receiver.  Everything in this library that produces or consumes a
broadcast schedule speaks in terms of the three small immutable records
defined here:

``Call``
    One call: the originating vertex, the full edge path used by the call
    (as a vertex sequence), and the receiving vertex.

``Round``
    The set of calls placed during one time unit.

``Schedule``
    An ordered list of rounds, together with the source vertex, modelling a
    complete broadcast.

Vertices are plain Python ``int``s throughout the library.  For hypercube
derived graphs the integer encodes the bit string: *dimension i* of the
paper (1-indexed, dimension 1 = least significant bit) corresponds to bit
``i - 1`` of the integer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, NoReturn, Sequence

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.frame import ScheduleFrame

Vertex = int
Edge = tuple[int, int]

__all__ = [
    "Vertex",
    "Edge",
    "Call",
    "Round",
    "Schedule",
    "ReproError",
    "InvalidParameterError",
    "InvalidScheduleError",
    "ConstructionError",
    "canonical_edge",
]


class ReproError(Exception):
    """Base class for all library-specific errors.

    Every subclass carries a stable machine-readable ``code`` string —
    the same identifier surfaces in CLI exit-2 one-liners and in the
    service's HTTP error JSON, so scripted consumers never have to
    pattern-match prose.  Codes are append-only: once published, a code
    never changes meaning (pinned by ``tests/test_errors.py``).
    """

    code: str = "repro-error"


class InvalidParameterError(ReproError, ValueError):
    """A construction or scheme was invoked with out-of-range parameters."""

    code = "invalid-parameter"


class InvalidScheduleError(ReproError):
    """A schedule violates the k-line communication model (Definition 1)."""

    code = "invalid-schedule"


class ConstructionError(ReproError):
    """An internal invariant of a construction failed.

    Raised when a procedure from the paper cannot complete, e.g. when a
    labeling does not satisfy Condition A and therefore ``Broadcast_2``
    cannot find a relay neighbour.  Seeing this exception always indicates
    a bug (or a deliberately corrupted input in a test).
    """

    code = "construction-error"


def canonical_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical (sorted) form of the undirected edge ``{u, v}``.

    Used as a dictionary/set key wherever undirected edges must be compared,
    e.g. edge-disjointness checks in the validator.
    """
    return (u, v) if u <= v else (v, u)


@dataclass(frozen=True)
class Call:
    """A single call under the k-line communication model.

    Parameters
    ----------
    source:
        The vertex placing the call.  Must equal ``path[0]``.
    path:
        The full vertex sequence traversed by the call, including both
        endpoints.  ``len(path) - 1`` is the *length* of the call, which
        Definition 1 bounds by ``k``.
    receiver:
        The called vertex.  Must equal ``path[-1]``.
    """

    source: Vertex
    path: tuple[Vertex, ...]
    receiver: Vertex

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise InvalidScheduleError(
                f"a call must traverse at least one edge, got path {self.path!r}"
            )
        if self.path[0] != self.source:
            raise InvalidScheduleError(
                f"path {self.path!r} does not start at source {self.source}"
            )
        if self.path[-1] != self.receiver:
            raise InvalidScheduleError(
                f"path {self.path!r} does not end at receiver {self.receiver}"
            )

    @staticmethod
    def direct(u: Vertex, v: Vertex) -> "Call":
        """A length-1 call along the single edge ``{u, v}``."""
        return Call(source=u, path=(u, v), receiver=v)

    @staticmethod
    def via(path: Sequence[Vertex]) -> "Call":
        """A call along the explicit ``path`` (first element calls last)."""
        verts = tuple(path)
        return Call(source=verts[0], path=verts, receiver=verts[-1])

    @property
    def length(self) -> int:
        """Number of edges occupied by this call."""
        return len(self.path) - 1

    def edges(self) -> list[Edge]:
        """Canonical undirected edges traversed by the call, in order."""
        return [canonical_edge(a, b) for a, b in zip(self.path, self.path[1:])]


@dataclass(frozen=True)
class Round:
    """All calls placed during one time unit."""

    calls: tuple[Call, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "calls", tuple(self.calls))

    def __iter__(self) -> Iterator[Call]:
        return iter(self.calls)

    def __len__(self) -> int:
        return len(self.calls)

    def sources(self) -> list[Vertex]:
        return [c.source for c in self.calls]

    def receivers(self) -> list[Vertex]:
        return [c.receiver for c in self.calls]

    def max_call_length(self) -> int:
        return max((c.length for c in self.calls), default=0)


class _FrozenRounds(list["Round"]):
    """A list view that rejects mutation (rounds of a frozen schedule)."""

    def _reject(self, *_args: object, **_kwargs: object) -> NoReturn:
        raise InvalidParameterError("schedule is frozen; its rounds cannot be mutated")

    # the mutators deliberately do not match list's signatures
    append = extend = insert = remove = clear = _reject  # type: ignore[assignment]
    pop = sort = reverse = _reject  # type: ignore[assignment]
    __setitem__ = __delitem__ = _reject  # type: ignore[assignment]
    __iadd__ = __imul__ = _reject  # type: ignore[assignment]


class Schedule:
    """A complete broadcast schedule: the source plus an ordered round list.

    A schedule makes **no** claims about its own validity; use
    :func:`repro.api.validate` (or the simulator) to check it against a
    graph and a call-length bound ``k``.

    Since the columnar redesign a ``Schedule`` is a *view* over the
    canonical interchange format, :class:`repro.frame.ScheduleFrame`:

    * ``Schedule.from_frame(frame)`` wraps a frame without materializing
      any ``Call`` objects — rounds are built lazily on first access, so
      array-native consumers (the fast/batch validators) never pay
      object-per-call cost;
    * ``schedule.to_frame()`` is the lossless inverse (property-pinned);
    * schedulers and engines return **frozen** schedules (builder mutates,
      result doesn't): ``append_round`` and round-list mutation raise on a
      frozen schedule, exactly like ``Graph`` after ``freeze()``.
    """

    __slots__ = ("source", "_rounds", "_frame", "_frozen")

    source: Vertex
    _rounds: list[Round] | None
    _frame: "ScheduleFrame | None"
    _frozen: bool

    def __init__(
        self,
        source: Vertex,
        rounds: Sequence[Round] | None = None,
    ) -> None:
        self.source = source
        self._rounds = list(rounds) if rounds is not None else []
        self._frame = None
        self._frozen = False

    # -- frame interop ------------------------------------------------------

    @classmethod
    def from_frame(cls, frame: "ScheduleFrame") -> "Schedule":
        """A frozen object view over a :class:`~repro.frame.ScheduleFrame`.

        No ``Call``/``Round`` objects are created until ``rounds`` is
        first touched; consumers that speak arrays (the fast validator,
        the batch engine, io) read the frame directly.
        """
        schedule = cls.__new__(cls)
        schedule.source = frame.source
        schedule._rounds = None
        schedule._frame = frame
        schedule._frozen = True
        return schedule

    def to_frame(self) -> "ScheduleFrame":
        """The columnar form of this schedule (lossless round-trip).

        Frozen schedules cache the frame; mutable ones rebuild it per
        call (the rounds may change under us).
        """
        if self._frame is not None:
            return self._frame
        from repro.frame import ScheduleFrame

        assert self._rounds is not None  # no frame implies explicit rounds
        frame = ScheduleFrame.from_paths(
            self.source, ([c.path for c in rnd] for rnd in self._rounds)
        )
        if self._frozen:
            self._frame = frame
        return frame

    def frame_or_none(self) -> "ScheduleFrame | None":
        """The cached frame if this schedule already has one (no build)."""
        return self._frame

    # -- rounds view --------------------------------------------------------

    @property
    def rounds(self) -> list[Round]:
        if self._rounds is None:
            assert self._frame is not None  # lazy rounds come from a frame
            self._rounds = _FrozenRounds(
                Round(tuple(Call.via(p) for p in paths))
                for paths in self._frame.iter_round_paths()
            )
        return self._rounds

    @rounds.setter
    def rounds(self, value: Sequence[Round]) -> None:
        if self._frozen:
            raise InvalidParameterError("schedule is frozen; cannot replace its rounds")
        self._rounds = list(value)
        self._frame = None

    def append_round(self, calls: Sequence[Call]) -> None:
        if self._frozen:
            raise InvalidParameterError("schedule is frozen; cannot append rounds")
        self._frame = None
        assert self._rounds is not None  # mutable schedules hold a list
        self._rounds.append(Round(tuple(calls)))

    # -- freezing -----------------------------------------------------------

    @property
    def frozen(self) -> bool:
        return self._frozen

    def freeze(self) -> "Schedule":
        """Mark the schedule immutable and return ``self`` (for chaining).

        Schedulers and the batch engine freeze every schedule they hand
        out, so a validated result cannot be silently edited afterwards.
        """
        if not self._frozen:
            self._frozen = True
            if self._rounds is not None and not isinstance(self._rounds, _FrozenRounds):
                self._rounds = _FrozenRounds(self._rounds)
        return self

    # -- inspection ---------------------------------------------------------

    def __iter__(self) -> Iterator[Round]:
        return iter(self.rounds)

    def __len__(self) -> int:
        if self._rounds is None:
            assert self._frame is not None
            return self._frame.n_rounds
        return len(self._rounds)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        if self.source != other.source:
            return False
        if self._frame is not None and self._frame is other._frame:
            return True
        return list(self.rounds) == list(other.rounds)

    __hash__ = None  # type: ignore[assignment]  # mutable container semantics

    def __repr__(self) -> str:
        return (
            f"Schedule(source={self.source}, rounds={len(self)}"
            f"{', frozen' if self._frozen else ''})"
        )

    @property
    def num_rounds(self) -> int:
        return len(self)

    @property
    def num_calls(self) -> int:
        if self._rounds is None:
            assert self._frame is not None
            return self._frame.n_calls
        return sum(len(r) for r in self._rounds)

    def max_call_length(self) -> int:
        """The longest call in the schedule (the schedule's effective ``k``)."""
        if self._rounds is None:
            assert self._frame is not None
            return self._frame.max_call_length()
        return max((r.max_call_length() for r in self._rounds), default=0)

    def informed_after(self, t: int) -> set[Vertex]:
        """Vertices informed after the first ``t`` rounds (source included).

        This replays receivers without checking feasibility; it is a
        convenience for inspection, not a validator.
        """
        if self._rounds is None:
            assert self._frame is not None
            return self._frame.informed_after(t)
        informed = {self.source}
        for r in self._rounds[:t]:
            informed.update(r.receivers())
        return informed

    def all_informed(self) -> set[Vertex]:
        return self.informed_after(len(self))
