"""Core datatypes shared across the library.

The paper's communication model (Definition 1) is about *calls*: during a
synchronous time unit a vertex may call one other vertex at distance at most
``k``, and simultaneous calls must be pairwise edge-disjoint and must not
share a receiver.  Everything in this library that produces or consumes a
broadcast schedule speaks in terms of the three small immutable records
defined here:

``Call``
    One call: the originating vertex, the full edge path used by the call
    (as a vertex sequence), and the receiving vertex.

``Round``
    The set of calls placed during one time unit.

``Schedule``
    An ordered list of rounds, together with the source vertex, modelling a
    complete broadcast.

Vertices are plain Python ``int``s throughout the library.  For hypercube
derived graphs the integer encodes the bit string: *dimension i* of the
paper (1-indexed, dimension 1 = least significant bit) corresponds to bit
``i - 1`` of the integer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

Vertex = int
Edge = tuple[int, int]

__all__ = [
    "Vertex",
    "Edge",
    "Call",
    "Round",
    "Schedule",
    "ReproError",
    "InvalidParameterError",
    "InvalidScheduleError",
    "ConstructionError",
    "canonical_edge",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class InvalidParameterError(ReproError, ValueError):
    """A construction or scheme was invoked with out-of-range parameters."""


class InvalidScheduleError(ReproError):
    """A schedule violates the k-line communication model (Definition 1)."""


class ConstructionError(ReproError):
    """An internal invariant of a construction failed.

    Raised when a procedure from the paper cannot complete, e.g. when a
    labeling does not satisfy Condition A and therefore ``Broadcast_2``
    cannot find a relay neighbour.  Seeing this exception always indicates
    a bug (or a deliberately corrupted input in a test).
    """


def canonical_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical (sorted) form of the undirected edge ``{u, v}``.

    Used as a dictionary/set key wherever undirected edges must be compared,
    e.g. edge-disjointness checks in the validator.
    """
    return (u, v) if u <= v else (v, u)


@dataclass(frozen=True)
class Call:
    """A single call under the k-line communication model.

    Parameters
    ----------
    source:
        The vertex placing the call.  Must equal ``path[0]``.
    path:
        The full vertex sequence traversed by the call, including both
        endpoints.  ``len(path) - 1`` is the *length* of the call, which
        Definition 1 bounds by ``k``.
    receiver:
        The called vertex.  Must equal ``path[-1]``.
    """

    source: Vertex
    path: tuple[Vertex, ...]
    receiver: Vertex

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise InvalidScheduleError(
                f"a call must traverse at least one edge, got path {self.path!r}"
            )
        if self.path[0] != self.source:
            raise InvalidScheduleError(
                f"path {self.path!r} does not start at source {self.source}"
            )
        if self.path[-1] != self.receiver:
            raise InvalidScheduleError(
                f"path {self.path!r} does not end at receiver {self.receiver}"
            )

    @staticmethod
    def direct(u: Vertex, v: Vertex) -> "Call":
        """A length-1 call along the single edge ``{u, v}``."""
        return Call(source=u, path=(u, v), receiver=v)

    @staticmethod
    def via(path: Sequence[Vertex]) -> "Call":
        """A call along the explicit ``path`` (first element calls last)."""
        path = tuple(path)
        return Call(source=path[0], path=path, receiver=path[-1])

    @property
    def length(self) -> int:
        """Number of edges occupied by this call."""
        return len(self.path) - 1

    def edges(self) -> list[Edge]:
        """Canonical undirected edges traversed by the call, in order."""
        return [canonical_edge(a, b) for a, b in zip(self.path, self.path[1:])]


@dataclass(frozen=True)
class Round:
    """All calls placed during one time unit."""

    calls: tuple[Call, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "calls", tuple(self.calls))

    def __iter__(self) -> Iterator[Call]:
        return iter(self.calls)

    def __len__(self) -> int:
        return len(self.calls)

    def sources(self) -> list[Vertex]:
        return [c.source for c in self.calls]

    def receivers(self) -> list[Vertex]:
        return [c.receiver for c in self.calls]

    def max_call_length(self) -> int:
        return max((c.length for c in self.calls), default=0)


@dataclass
class Schedule:
    """A complete broadcast schedule: the source plus an ordered round list.

    A schedule makes **no** claims about its own validity; use
    :func:`repro.model.validator.validate_broadcast` (or the simulator) to
    check it against a graph and a call-length bound ``k``.
    """

    source: Vertex
    rounds: list[Round] = field(default_factory=list)

    def __iter__(self) -> Iterator[Round]:
        return iter(self.rounds)

    def __len__(self) -> int:
        return len(self.rounds)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def num_calls(self) -> int:
        return sum(len(r) for r in self.rounds)

    def max_call_length(self) -> int:
        """The longest call in the schedule (the schedule's effective ``k``)."""
        return max((r.max_call_length() for r in self.rounds), default=0)

    def informed_after(self, t: int) -> set[Vertex]:
        """Vertices informed after the first ``t`` rounds (source included).

        This replays receivers without checking feasibility; it is a
        convenience for inspection, not a validator.
        """
        informed = {self.source}
        for r in self.rounds[:t]:
            informed.update(r.receivers())
        return informed

    def all_informed(self) -> set[Vertex]:
        return self.informed_after(len(self.rounds))

    def append_round(self, calls: Sequence[Call]) -> None:
        self.rounds.append(Round(tuple(calls)))
