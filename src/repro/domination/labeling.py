"""Condition-A labelings of the cube ``Q_m`` (paper, Section 3).

A labeling is a map ``f : V(Q_m) → C``.  Condition A requires each closed
neighbourhood to contain every label.  The key constructions:

``trivial_labeling``
    One label everywhere — always satisfies Condition A (the paper's
    remark that at least one labeling exists for every m).

``hamming_labeling``
    For ``m = 2^p − 1``: label = Hamming syndrome, giving the maximum
    possible ``m + 1`` labels (optimal; see :mod:`repro.coding.hamming`).

``lemma2_labeling``
    General ``m``: tile ``Q_m`` by subcubes ``Q_{m'}`` where ``m'`` is the
    largest integer ≤ m with ``m' + 1`` a power of two, and label each tile
    by the Hamming labeling of its m'-suffix.  Yields ``m' + 1 ≥ (m+1)/2``
    labels (the Lemma 2 lower bound ⌊m/2⌋+1 — the floor form; the paper
    prints ⌊m/2⌋ + 1 as "m/2 + 1" with floor brackets).

Labels are integers ``0 .. num_labels - 1``; the paper's ``c_j`` is label
``j - 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.coding.hamming import hamming_syndrome_table
from repro.types import InvalidParameterError

__all__ = [
    "ConditionALabeling",
    "trivial_labeling",
    "hamming_labeling",
    "lemma2_labeling",
    "lemma2_lower_bound",
    "largest_hamming_length_at_most",
    "best_available_labeling",
    "paper_example_labeling_q2",
    "paper_example_labeling_q3",
    "labeling_from_array",
]


@dataclass(frozen=True)
class ConditionALabeling:
    """A labeling of ``V(Q_m) = {0,1}^m`` by labels ``0..num_labels-1``.

    ``labels[u]`` is the label of vertex ``u``.  ``verify()`` checks
    Condition A from the definition (used pervasively in tests; the
    constructions also self-check at build time via ``verify=True``).
    """

    m: int
    num_labels: int
    labels: np.ndarray = field(repr=False)
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.m < 1:
            raise InvalidParameterError(f"need m >= 1, got {self.m}")
        if self.labels.shape != (1 << self.m,):
            raise InvalidParameterError(
                f"labels must have shape ({1 << self.m},), got {self.labels.shape}"
            )
        if self.num_labels < 1:
            raise InvalidParameterError("need at least one label")
        lo, hi = int(self.labels.min()), int(self.labels.max())
        if lo < 0 or hi >= self.num_labels:
            raise InvalidParameterError(
                f"label values [{lo}, {hi}] out of range [0, {self.num_labels})"
            )

    def label_of(self, u: int) -> int:
        return int(self.labels[u])

    def class_of(self, label: int) -> list[int]:
        """All vertices carrying ``label`` (a dominating set if Condition A)."""
        return [int(v) for v in np.nonzero(self.labels == label)[0]]

    def classes(self) -> list[list[int]]:
        return [self.class_of(c) for c in range(self.num_labels)]

    def verify(self) -> bool:
        """Check Condition A: every closed neighbourhood sees every label."""
        n_verts = 1 << self.m
        if set(np.unique(self.labels)) != set(range(self.num_labels)):
            return False  # labeling must be onto C
        # closed-neighbourhood label sets, vectorized one dimension at a time
        seen = np.zeros((n_verts, self.num_labels), dtype=bool)
        seen[np.arange(n_verts), self.labels] = True
        verts = np.arange(n_verts, dtype=np.int64)
        for j in range(self.m):
            nbr = verts ^ (1 << j)
            seen[verts, self.labels[nbr]] = True
        return bool(seen.all())

    def missing_label_report(self) -> list[tuple[int, set[int]]]:
        """Vertices whose closed neighbourhood misses labels (diagnostics)."""
        report = []
        full = set(range(self.num_labels))
        for u in range(1 << self.m):
            got = {self.label_of(u)}
            for j in range(self.m):
                got.add(self.label_of(u ^ (1 << j)))
            if got != full:
                report.append((u, full - got))
        return report


def trivial_labeling(m: int) -> ConditionALabeling:
    """All vertices get label 0 (always satisfies Condition A)."""
    return ConditionALabeling(
        m=m, num_labels=1, labels=np.zeros(1 << m, dtype=np.int64), name="trivial"
    )


def hamming_labeling(m: int) -> ConditionALabeling:
    """Optimal labeling for ``m = 2^p − 1``: label = Hamming syndrome.

    Raises unless ``m + 1`` is a power of two.
    """
    if m < 1 or (m + 1) & m != 0:
        raise InvalidParameterError(f"hamming labeling needs m = 2^p - 1, got m={m}")
    p = (m + 1).bit_length() - 1
    table = hamming_syndrome_table(p)
    return ConditionALabeling(m=m, num_labels=m + 1, labels=table, name="hamming")


def largest_hamming_length_at_most(m: int) -> int:
    """Largest ``m' ≤ m`` with ``m' + 1`` a power of two (Lemma 2's m')."""
    if m < 1:
        raise InvalidParameterError(f"need m >= 1, got {m}")
    p = (m + 1).bit_length()
    if (1 << p) - 1 <= m:
        return (1 << p) - 1
    return (1 << (p - 1)) - 1


def lemma2_lower_bound(m: int) -> int:
    """The Lemma 2 guarantee ``⌊m/2⌋ + 1 ≤ λ_m`` (achieved by
    :func:`lemma2_labeling`, which actually attains ``m' + 1 ≥ (m+1)/2``)."""
    return m // 2 + 1


def lemma2_labeling(m: int) -> ConditionALabeling:
    """Lemma 2's labeling for general ``m``: Hamming-label the m'-suffix.

    Partitions ``Q_m`` into ``2^{m−m'}`` copies of ``Q_{m'}`` (fix the top
    ``m − m'`` bits) and labels each copy by the syndrome of its suffix.
    Because Condition A holds *within each subcube*, it holds in ``Q_m``.
    Label count: ``m' + 1``, a power of two ≥ (m+1)/2.
    """
    mp = largest_hamming_length_at_most(m)
    if mp == m:
        return hamming_labeling(m)
    p = (mp + 1).bit_length() - 1
    sub = hamming_syndrome_table(p)  # length 2^mp
    reps = 1 << (m - mp)
    labels = np.tile(sub, reps)
    lab = ConditionALabeling(m=m, num_labels=mp + 1, labels=labels, name="lemma2")
    return lab


def best_available_labeling(m: int) -> ConditionALabeling:
    """The labeling with the most labels this library can construct for Q_m.

    Hamming when ``m + 1`` is a power of two (optimal, ``λ_m = m + 1``),
    otherwise the Lemma-2 tiling.  This is the ``f*`` used by the default
    parameters of ``Construct_BASE`` / ``Construct``; the construction
    procedures accept any verified Condition-A labeling if callers want to
    plug in something better (e.g. an exhaustively-found optimum from
    :mod:`repro.domination.domatic`).
    """
    if (m + 1) & m == 0:
        return hamming_labeling(m)
    return lemma2_labeling(m)


def labeling_from_array(
    m: int, labels: np.ndarray, *, name: str = "custom"
) -> ConditionALabeling:
    """Wrap a raw label array, inferring the label count (must be onto)."""
    labels = np.asarray(labels, dtype=np.int64)
    uniq = np.unique(labels)
    if not np.array_equal(uniq, np.arange(uniq.size)):
        raise InvalidParameterError("labels must be exactly 0..t-1 (onto, zero-based)")
    return ConditionALabeling(m=m, num_labels=int(uniq.size), labels=labels, name=name)


def paper_example_labeling_q2() -> ConditionALabeling:
    """Example 1, first labeling: f(00)=f(11)=c1, f(01)=f(10)=c2.

    Label = parity of the two bits, i.e. c1 ↦ 0 for even parity.
    """
    labels = np.array([0, 1, 1, 0], dtype=np.int64)  # u = 00,01,10,11
    return ConditionALabeling(m=2, num_labels=2, labels=labels, name="example1-q2")


def paper_example_labeling_q3() -> ConditionALabeling:
    """Example 1, second labeling of Q_3 with four labels.

    f(000)=f(111)=c1, f(001)=f(110)=c2, f(010)=f(101)=c3, f(011)=f(100)=c4.
    (Identical to the Hamming syndrome labeling up to renaming of labels —
    the test-suite checks this equivalence.)
    """
    labels = np.zeros(8, dtype=np.int64)
    for u in range(8):
        labels[u] = u if u < 4 else (u ^ 7)
    return ConditionALabeling(m=3, num_labels=4, labels=labels, name="example1-q3")
