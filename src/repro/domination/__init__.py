"""Condition-A labelings and domination machinery.

The basic step of the paper's construction (Section 3) labels the vertices
of ``Q_m`` with a set ``C`` of labels so that **Condition A** holds::

    ∀u ∈ V(Q_m):  {f(u)} ∪ {f(v) | {u,v} ∈ E(Q_m)}  =  C

i.e. every closed neighbourhood sees every label; equivalently, every label
class is a dominating set of ``Q_m``.  The maximum possible number of
labels, λ_m, is exactly the *domatic number* of ``Q_m``; Lemma 2 shows
``⌊m/2⌋ + 1 ≤ λ_m ≤ m + 1`` with equality at the top for ``m = 2^p − 1``
via Hamming codes.
"""

from repro.domination.dominating import (
    greedy_dominating_set,
    is_dominating_set,
    minimum_dominating_set,
)
from repro.domination.domatic import (
    condition_a_max_labels,
    domatic_number_exact,
    greedy_domatic_partition,
)
from repro.domination.labeling import (
    ConditionALabeling,
    best_available_labeling,
    hamming_labeling,
    lemma2_labeling,
    lemma2_lower_bound,
    paper_example_labeling_q2,
    paper_example_labeling_q3,
    trivial_labeling,
)

__all__ = [
    "ConditionALabeling",
    "trivial_labeling",
    "hamming_labeling",
    "lemma2_labeling",
    "lemma2_lower_bound",
    "best_available_labeling",
    "paper_example_labeling_q2",
    "paper_example_labeling_q3",
    "is_dominating_set",
    "greedy_dominating_set",
    "minimum_dominating_set",
    "domatic_number_exact",
    "greedy_domatic_partition",
    "condition_a_max_labels",
]
