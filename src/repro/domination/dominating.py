"""Dominating sets: verification, greedy cover, exact minimum for small graphs.

A set ``U ⊆ V(G)`` *dominates* G when every vertex is in U or adjacent to a
member of U (the paper's footnote 2).  Condition A says every label class
of the labeling dominates ``Q_m``; these helpers let tests state that
directly and let the analysis compare label classes against minimum
dominating sets.
"""

from __future__ import annotations

from itertools import combinations

from repro.graphs.base import Graph
from repro.types import InvalidParameterError

__all__ = [
    "is_dominating_set",
    "greedy_dominating_set",
    "minimum_dominating_set",
    "domination_number",
]


def is_dominating_set(g: Graph, candidate: set[int]) -> bool:
    """True iff every vertex of ``g`` is in ``candidate`` or adjacent to it."""
    for u in candidate:
        if not (0 <= u < g.n_vertices):
            raise InvalidParameterError(f"vertex {u} not in graph")
    dominated = set(candidate)
    for u in candidate:
        dominated |= g.neighbors(u)
    return len(dominated) == g.n_vertices


def greedy_dominating_set(g: Graph) -> set[int]:
    """Classic greedy: repeatedly take the vertex covering the most
    uncovered vertices (ln-approximation).  Deterministic tie-break by id."""
    uncovered = set(g.vertices())
    chosen: set[int] = set()
    while uncovered:
        best, best_gain = -1, -1
        for u in g.vertices():
            closed = {u} | g.neighbors(u)
            gain = len(closed & uncovered)
            if gain > best_gain:
                best, best_gain = u, gain
        chosen.add(best)
        uncovered -= {best} | g.neighbors(best)
    return chosen


def minimum_dominating_set(g: Graph, *, max_vertices: int = 24) -> set[int]:
    """Exact minimum dominating set by size-increasing exhaustive search.

    Exponential; guarded by ``max_vertices``.  Small cubes (Q_4 = 16
    vertices) are comfortably in range.
    """
    n = g.n_vertices
    if n > max_vertices:
        raise InvalidParameterError(
            f"exact search capped at {max_vertices} vertices, graph has {n}"
        )
    if n == 0:
        return set()
    greedy = greedy_dominating_set(g)
    closed_masks = []
    for u in range(n):
        mask = 1 << u
        for w in g.neighbors(u):
            mask |= 1 << w
        closed_masks.append(mask)
    full = (1 << n) - 1
    for size in range(1, len(greedy) + 1):
        for combo in combinations(range(n), size):
            mask = 0
            for u in combo:
                mask |= closed_masks[u]
            if mask == full:
                return set(combo)
    return greedy  # unreachable: greedy itself is a certificate


def domination_number(g: Graph, *, max_vertices: int = 24) -> int:
    """γ(G): size of a minimum dominating set (exact, small graphs only)."""
    return len(minimum_dominating_set(g, max_vertices=max_vertices))
