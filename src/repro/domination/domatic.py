"""Domatic partitions — exact λ_m certification for small cubes.

The paper's λ_m (maximum label count of a Condition-A labeling of Q_m) is
the *domatic number* of Q_m: the maximum number of pairwise-disjoint
dominating sets that partition V.  ``domatic_number_exact`` certifies λ_m
for small graphs by backtracking over labelings with pruning on closed
neighbourhoods; experiment E05 uses it to pin down λ_1..λ_4 exactly and to
confirm the paper's λ_2 = 2, λ_3 = 4 (Example 1) and the remark that the
Lemma-2 lower bound is tight at m = 2 (λ_2 = 2 = ⌊2/2⌋+1 < 3).
"""

from __future__ import annotations

from repro.graphs.base import Graph
from repro.types import InvalidParameterError

__all__ = [
    "feasible_domatic_partition",
    "domatic_number_exact",
    "greedy_domatic_partition",
    "condition_a_max_labels",
]


def feasible_domatic_partition(
    g: Graph, t: int, *, node_budget: int = 5_000_000
) -> list[int] | None:
    """Find a labeling of V(g) with labels 0..t-1 such that every closed
    neighbourhood contains **all** t labels, or return None.

    This is exactly a domatic partition into t dominating sets / a
    Condition-A labeling with t labels.  Backtracking with:

    * a closed-neighbourhood feasibility prune (missing labels must not
      exceed unassigned neighbours), and
    * label-symmetry breaking (a new label may be opened only in
      first-use order).

    ``node_budget`` bounds the search tree; exceeding it raises, so a None
    return is always a *certified* infeasibility.
    """
    n = g.n_vertices
    if t < 1:
        raise InvalidParameterError(f"need t >= 1, got {t}")
    if t == 1:
        return [0] * n
    if g.min_degree() + 1 < t:
        return None  # classic bound: domatic number <= min degree + 1
    closed: list[list[int]] = [sorted({u} | g.neighbors(u)) for u in range(n)]
    # u -> list of w with u in N[w]
    membership: list[list[int]] = [[] for _ in range(n)]
    for w in range(n):
        for u in closed[w]:
            membership[u].append(w)

    labels = [-1] * n
    # per closed neighbourhood: bitmask of labels present, count unassigned
    present = [0] * n
    unassigned = [len(c) for c in closed]
    full_mask = (1 << t) - 1
    nodes_visited = 0

    # order vertices by BFS from 0 for locality of constraints
    order = []
    seen = [False] * n
    from collections import deque

    for start in range(n):
        if seen[start]:
            continue
        seen[start] = True
        dq = deque([start])
        while dq:
            x = dq.popleft()
            order.append(x)
            for y in sorted(g.neighbors(x)):
                if not seen[y]:
                    seen[y] = True
                    dq.append(y)

    def assign(u: int, c: int) -> bool:
        """Apply assignment; return False if some neighbourhood goes dead."""
        labels[u] = c
        ok = True
        for w in membership[u]:
            present[w] |= 1 << c
            unassigned[w] -= 1
            missing = t - int(present[w]).bit_count()
            if missing > unassigned[w]:
                ok = False
        return ok

    def unassign(u: int, c: int) -> None:
        labels[u] = -1
        for w in membership[u]:
            unassigned[w] += 1
        # recompute present masks touched by u (cheap: recompute from scratch)
        for w in membership[u]:
            mask = 0
            for x in closed[w]:
                if labels[x] != -1:
                    mask |= 1 << labels[x]
            present[w] = mask

    def backtrack(idx: int, max_label_used: int) -> bool:
        nonlocal nodes_visited
        nodes_visited += 1
        if nodes_visited > node_budget:
            raise InvalidParameterError(
                f"domatic search exceeded node budget {node_budget}"
            )
        if idx == n:
            return all(present[w] == full_mask for w in range(n))
        u = order[idx]
        # symmetry breaking: allow opening at most one new label
        limit = min(t - 1, max_label_used + 1)
        for c in range(limit + 1):
            ok = assign(u, c)
            if ok and backtrack(idx + 1, max(max_label_used, c)):
                return True
            unassign(u, c)
        return False

    if backtrack(0, -1):
        return labels[:]
    return None


def domatic_number_exact(g: Graph, *, node_budget: int = 5_000_000) -> int:
    """The exact domatic number, searching downward from min-degree + 1."""
    if g.n_vertices == 0:
        raise InvalidParameterError("empty graph has no domatic number")
    upper = g.min_degree() + 1
    for t in range(upper, 0, -1):
        if feasible_domatic_partition(g, t, node_budget=node_budget) is not None:
            return t
    raise AssertionError("t = 1 is always feasible")  # pragma: no cover


def greedy_domatic_partition(g: Graph) -> list[set[int]]:
    """Heuristic: peel greedy dominating sets while the rest still dominates.

    Returns a list of pairwise-disjoint dominating sets (not necessarily
    covering all of V; leftover vertices are appended to the first class so
    the result is a partition).  A cheap lower-bound witness for λ.
    """
    from repro.domination.dominating import is_dominating_set

    remaining = set(g.vertices())
    classes: list[set[int]] = []
    while True:
        sub = _induced_availability_greedy(g, remaining)
        if sub is None:
            break
        classes.append(sub)
        remaining -= sub
    if not classes:
        return [set(g.vertices())]
    if remaining:
        classes[0] |= remaining
        if not is_dominating_set(g, classes[0]):  # pragma: no cover - defensive
            raise AssertionError("augmented class stopped dominating")
    return classes


def _induced_availability_greedy(g: Graph, available: set[int]) -> set[int] | None:
    """Greedy dominating set of g using only ``available`` vertices, or None."""
    uncovered = set(g.vertices())
    chosen: set[int] = set()
    pool = set(available)
    while uncovered:
        best, best_gain = -1, 0
        for u in sorted(pool):
            gain = len(({u} | g.neighbors(u)) & uncovered)
            if gain > best_gain or (gain == best_gain and gain > 0 and u < best):
                best, best_gain = u, gain
        if best_gain == 0:
            return None
        chosen.add(best)
        pool.discard(best)
        uncovered -= {best} | g.neighbors(best)
    return chosen


def condition_a_max_labels(m: int, *, node_budget: int = 5_000_000) -> int:
    """Exact λ_m (the domatic number of Q_m) for small m (≤ 4 is fast)."""
    from repro.graphs.hypercube import hypercube

    if m < 1:
        raise InvalidParameterError(f"need m >= 1, got {m}")
    if m > 5:
        raise InvalidParameterError(f"exact λ_m search supported for m <= 5, got {m}")
    return domatic_number_exact(hypercube(m), node_budget=node_budget)
