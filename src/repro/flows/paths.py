"""Round packing via max-flow: bounds and path extraction.

One round of k-line communication is a set of pairwise edge-disjoint
calls, each from a distinct informed vertex to a distinct uninformed
vertex.  Ignoring the length-≤-k constraint, the maximum number of such
calls equals the max flow in the network

    S → (each informed vertex, capacity 1)
    undirected graph edges, capacity 1 (either direction)
    (each uninformed vertex) → T, capacity 1

— intermediate vertices may relay any number of calls (the line model's
"switching"), so there are no internal vertex capacities.

:func:`round_packing_bound` gives the flow value (an upper bound on
per-round progress for any k; *exact* achievability for k ≥ diameter);
:func:`decompose_paths` extracts an explicit edge-disjoint path family
realizing it.
"""

from __future__ import annotations

from repro.flows.maxflow import FlowNetwork
from repro.graphs.base import Graph
from repro.types import InvalidParameterError

__all__ = ["round_packing_bound", "decompose_paths"]


def _build_round_network(
    graph: Graph, informed: set[int], targets: set[int]
) -> tuple[FlowNetwork, int, int]:
    n = graph.n_vertices
    s, t = n, n + 1
    net = FlowNetwork(n + 2)
    for v in informed:
        net.add_arc(s, v, 1)
    for v in targets:
        net.add_arc(v, t, 1)
    for u, v in graph.edges():
        net.add_undirected_unit_edge(u, v)
    return net, s, t


def round_packing_bound(
    graph: Graph, informed: set[int], targets: set[int] | None = None
) -> int:
    """Max number of simultaneous edge-disjoint informed→uninformed calls
    (unbounded call length)."""
    if not informed:
        raise InvalidParameterError("need at least one informed vertex")
    tgt = targets if targets is not None else set(graph.vertices()) - informed
    if not tgt:
        return 0
    net, s, t = _build_round_network(graph, informed, tgt)
    return net.max_flow(s, t)


def decompose_paths(
    graph: Graph, informed: set[int], targets: set[int] | None = None
) -> list[list[int]]:
    """Explicit vertex paths realizing a maximum round packing.

    Returns a list of paths ``[caller, …, receiver]``; pairwise
    edge-disjoint, callers distinct and informed, receivers distinct and
    uninformed.  Callers may appear as intermediate vertices of other
    paths (switching), which the k-line model permits.
    """
    if not informed:
        raise InvalidParameterError("need at least one informed vertex")
    tgt = targets if targets is not None else set(graph.vertices()) - informed
    if not tgt:
        return []
    net, s, t = _build_round_network(graph, informed, tgt)
    net.max_flow(s, t)

    # net flow per ordered vertex pair, with opposing flows cancelled
    flow: dict[tuple[int, int], int] = {}
    for u in range(net.n_nodes):
        for idx, arc in enumerate(net.adj[u]):
            if arc.init_cap > 0:
                f = net.flow_on(u, idx)
                if f > 0:
                    flow[(u, arc.to)] = flow.get((u, arc.to), 0) + f
    for (u, v) in list(flow):
        if (v, u) in flow and flow[(u, v)] > 0 and flow[(v, u)] > 0:
            c = min(flow[(u, v)], flow[(v, u)])
            flow[(u, v)] -= c
            flow[(v, u)] -= c

    out_arcs: dict[int, list[int]] = {}
    for (u, v), f in flow.items():
        if f > 0:
            out_arcs.setdefault(u, []).extend([v] * f)
    for v in out_arcs:
        out_arcs[v].sort()

    paths: list[list[int]] = []
    while out_arcs.get(s):
        node = out_arcs[s].pop()
        path = [node]
        while node != t:
            nxt = out_arcs[node].pop()
            if nxt != t:
                path.append(nxt)
            node = nxt
        paths.append(path)
    return paths
