"""Dinic's maximum-flow algorithm on an explicit residual network.

Small, dependency-free, integer capacities.  Complexity O(V²E) generally
and O(E√V) on unit-capacity networks — more than enough for the round
packing instances here (hundreds of nodes).

The network is directed; undirected unit-capacity graph edges are modelled
as a pair of opposing arcs (standard construction: a unit of flow may
cross an undirected edge in either direction, and opposing units cancel,
so any integral flow decomposes into paths using each undirected edge at
most once — the edge-disjointness the k-line model needs).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.types import InvalidParameterError

__all__ = ["FlowNetwork", "max_flow_value"]


@dataclass
class _Arc:
    to: int
    cap: int
    rev: int  # index of the reverse arc in adj[to]
    init_cap: int = 0  # capacity at creation (for flow read-back)


@dataclass
class FlowNetwork:
    """A directed flow network over nodes ``0 .. n_nodes-1``."""

    n_nodes: int
    adj: list[list[_Arc]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_nodes < 0:
            raise InvalidParameterError(f"need n_nodes >= 0, got {self.n_nodes}")
        if not self.adj:
            self.adj = [[] for _ in range(self.n_nodes)]

    def add_arc(self, u: int, v: int, cap: int) -> None:
        """Add a directed arc u→v of the given capacity (plus the residual)."""
        if not (0 <= u < self.n_nodes and 0 <= v < self.n_nodes):
            raise InvalidParameterError(f"arc ({u}, {v}) out of range")
        if cap < 0:
            raise InvalidParameterError(f"capacity must be >= 0, got {cap}")
        self.adj[u].append(_Arc(v, cap, len(self.adj[v]), cap))
        self.adj[v].append(_Arc(u, 0, len(self.adj[u]) - 1, 0))

    def add_undirected_unit_edge(self, u: int, v: int) -> None:
        """Model an undirected unit-capacity edge (one call may cross it,
        in either direction)."""
        # two opposing unit arcs; flow cancellation keeps net use <= 1
        self.add_arc(u, v, 1)
        self.add_arc(v, u, 1)

    # -- Dinic ------------------------------------------------------------

    def _bfs_levels(self, s: int, t: int) -> list[int] | None:
        level = [-1] * self.n_nodes
        level[s] = 0
        dq: deque[int] = deque([s])
        while dq:
            u = dq.popleft()
            for arc in self.adj[u]:
                if arc.cap > 0 and level[arc.to] == -1:
                    level[arc.to] = level[u] + 1
                    dq.append(arc.to)
        return level if level[t] != -1 else None

    def _dfs_block(
        self, u: int, t: int, pushed: int, level: list[int], it: list[int]
    ) -> int:
        if u == t:
            return pushed
        while it[u] < len(self.adj[u]):
            arc = self.adj[u][it[u]]
            if arc.cap > 0 and level[arc.to] == level[u] + 1:
                d = self._dfs_block(arc.to, t, min(pushed, arc.cap), level, it)
                if d > 0:
                    arc.cap -= d
                    self.adj[arc.to][arc.rev].cap += d
                    return d
            it[u] += 1
        return 0

    def max_flow(self, s: int, t: int) -> int:
        """Run Dinic from s to t; mutates the residual capacities."""
        if s == t:
            raise InvalidParameterError("source equals sink")
        flow = 0
        while True:
            level = self._bfs_levels(s, t)
            if level is None:
                return flow
            it = [0] * self.n_nodes
            while True:
                pushed = self._dfs_block(s, t, 1 << 60, level, it)
                if pushed == 0:
                    break
                flow += pushed

    def flow_on(self, u: int, arc_index: int) -> int:
        """Units of flow currently on the arc_index-th arc out of ``u``."""
        arc = self.adj[u][arc_index]
        return arc.init_cap - arc.cap


def max_flow_value(network: FlowNetwork, s: int, t: int) -> int:
    """Convenience wrapper (mutates the network's residual capacities)."""
    return network.max_flow(s, t)
