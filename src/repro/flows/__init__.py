"""Max-flow substrate (written from scratch; no external solver).

Used by the generic broadcast schedulers: the number of vertices that can
be informed in one round is upper-bounded by a maximum flow from the
informed set to the uninformed set where every graph edge has unit
capacity (calls must be edge-disjoint) and every vertex may source/sink at
most one call.  :mod:`repro.schedulers.greedy` uses this as a per-round
packing oracle and for retry decisions.
"""

from repro.flows.maxflow import FlowNetwork, max_flow_value
from repro.flows.paths import decompose_paths, round_packing_bound

__all__ = ["FlowNetwork", "max_flow_value", "decompose_paths", "round_packing_bound"]
