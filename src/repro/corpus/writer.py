"""Streaming corpus builder: append frames, assemble one packed file.

:class:`CorpusWriter` is the low-level append API: feed it frames group
by group (a group is one ``(graph spec, scheduler, k, seed)`` key,
sources strictly ascending) and it streams the three big planes to
spooled temporaries — memory stays O(frame), not O(corpus) — while
digesting every byte incrementally.  ``close()`` assembles the final
header/sections/footer/trailer file and atomically replaces the target
path, so a crashed build never leaves a half-corpus behind.

:func:`build_corpus` is the generation front-end used by ``repro corpus
build``.  Two modes, keyed by the scheduler name:

* ``"scheme"`` — the paper's construction: one generated schedule per
  coset of :func:`repro.engine.batch.translation_group`, the rest of
  each coset derived as stacked XOR translations
  (:func:`~repro.engine.batch.all_sources_schedules`), and each row
  sliced straight into a frame without materializing ``Schedule``/
  ``Call`` objects.
* any registered scheduler — one :func:`repro.api.schedule` run per
  source.  Only found-and-valid results are admitted (that is the
  corpus-hit contract the service relies on); anything else aborts the
  build with a :class:`CorpusError` naming the failing source.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import IO, Any, Iterable, Sequence

import numpy as np

from repro.corpus import format as corpus_format
from repro.errors import CorpusError
from repro.frame import ScheduleFrame

__all__ = ["CorpusWriter", "build_corpus"]

# The paper's construction is not a registry scheduler; the corpus
# spells it the same way analysis/scenarios.py does.
SCHEME_SCHEDULER = "scheme"

_COPY_CHUNK = 1 << 20


class _PlaneSink:
    """One big section streamed to a spooled temp file, digest inline."""

    def __init__(self) -> None:
        self._file: IO[bytes] = tempfile.SpooledTemporaryFile(max_size=1 << 22)
        self._digest = hashlib.sha256()
        self.count = 0

    def append(self, arr: np.ndarray) -> None:
        data = np.ascontiguousarray(arr, dtype="<i8").tobytes()
        self._file.write(data)
        self._digest.update(data)
        self.count += arr.size

    def hexdigest(self) -> str:
        return self._digest.hexdigest()

    def copy_into(self, out: IO[bytes]) -> None:
        self._file.seek(0)
        while True:
            chunk = self._file.read(_COPY_CHUNK)
            if not chunk:
                break
            out.write(chunk)

    def close(self) -> None:
        self._file.close()


class CorpusWriter:
    """Append frames, then :meth:`close` to assemble the packed file."""

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._planes = {
            name: _PlaneSink()
            for name in ("path_verts", "call_offsets", "round_offsets")
        }
        self._sources: list[int] = []
        self._pv_bounds: list[int] = [0]
        self._co_bounds: list[int] = [0]
        self._ro_bounds: list[int] = [0]
        self._groups: list[corpus_format.GroupInfo] = []
        self._open_key: tuple[str, str, int | None, int] | None = None
        self._open_lo = 0
        self._seen_keys: set[tuple[str, str, int | None, int]] = set()
        self._closed = False

    @property
    def n_frames(self) -> int:
        return len(self._sources)

    def add_frame(
        self,
        graph: str,
        scheduler: str,
        frame: ScheduleFrame,
        *,
        k: int | None = None,
        seed: int = 0,
    ) -> None:
        """Append one frame under the ``(graph, scheduler, k, seed)`` key.

        Frames for one key must arrive contiguously and in strictly
        ascending source order (that is what makes per-source lookup a
        binary search); a key can never be reopened.
        """
        if self._closed:
            raise CorpusError("corpus writer is already closed")
        key = (graph, scheduler, k, seed)
        if key != self._open_key:
            self._finish_group()
            if key in self._seen_keys:
                raise CorpusError(
                    f"corpus group {key!r} was already written; "
                    "frames for one key must be appended contiguously"
                )
            self._open_key = key
            self._open_lo = self.n_frames
        elif self._sources and frame.source <= self._sources[-1]:
            raise CorpusError(
                f"corpus group {key!r} sources must be strictly ascending, "
                f"got {frame.source} after {self._sources[-1]}"
            )
        self._planes["path_verts"].append(frame.path_verts)
        self._planes["call_offsets"].append(frame.call_offsets)
        self._planes["round_offsets"].append(frame.round_offsets)
        self._sources.append(int(frame.source))
        self._pv_bounds.append(self._planes["path_verts"].count)
        self._co_bounds.append(self._planes["call_offsets"].count)
        self._ro_bounds.append(self._planes["round_offsets"].count)

    def _finish_group(self) -> None:
        if self._open_key is None:
            return
        graph, scheduler, k, seed = self._open_key
        self._groups.append(
            corpus_format.GroupInfo(
                graph=graph,
                scheduler=scheduler,
                k=k,
                seed=seed,
                lo=self._open_lo,
                hi=self.n_frames,
            )
        )
        self._seen_keys.add(self._open_key)
        self._open_key = None

    def close(self) -> Path:
        """Assemble and atomically publish the corpus file."""
        if self._closed:
            return self._path
        self._closed = True
        self._finish_group()
        small = {
            "source": np.asarray(self._sources, dtype="<i8"),
            "pv_bounds": np.asarray(self._pv_bounds, dtype="<i8"),
            "co_bounds": np.asarray(self._co_bounds, dtype="<i8"),
            "ro_bounds": np.asarray(self._ro_bounds, dtype="<i8"),
        }
        sections: dict[str, dict[str, Any]] = {}
        offset = corpus_format.HEADER_SIZE
        for name in corpus_format.SECTION_NAMES:
            if name in self._planes:
                count = self._planes[name].count
                digest = self._planes[name].hexdigest()
            else:
                count = int(small[name].size)
                digest = corpus_format.section_sha256(small[name].tobytes())
            sections[name] = {"offset": offset, "count": count, "sha256": digest}
            offset += count * 8
        footer = corpus_format.encode_footer(sections, self._groups, self.n_frames)
        tmp = self._path.with_name(self._path.name + ".tmp")
        with open(tmp, "wb") as out:
            out.write(corpus_format.pack_header())
            for name in corpus_format.SECTION_NAMES:
                if name in self._planes:
                    self._planes[name].copy_into(out)
                else:
                    out.write(small[name].tobytes())
            out.write(footer)
            out.write(corpus_format.pack_trailer(offset, len(footer)))
        os.replace(tmp, self._path)
        for sink in self._planes.values():
            sink.close()
        return self._path

    def __enter__(self) -> "CorpusWriter":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if exc_type is None:
            self.close()
        else:
            for sink in self._planes.values():
                sink.close()
            self._closed = True


def _scheme_frames(
    construction_spec: str, sources: Sequence[int] | None
) -> Iterable[ScheduleFrame]:
    """Frames for the construction, ascending source, coset-derived."""
    from repro import api
    from repro.engine.batch import all_sources_schedules

    sh = api.construction(construction_spec)
    stacks = all_sources_schedules(sh, sources)
    rows = [
        (int(stack.sources[i]), stack, i)
        for stack in stacks
        for i in range(stack.n_schedules)
    ]
    rows.sort(key=lambda row: row[0])
    for _source, stack, i in rows:
        yield stack.to_frame(i)


def _scheduler_frames(
    graph_spec: str,
    scheduler: str,
    sources: Sequence[int] | None,
    *,
    k: int | None,
    seed: int,
) -> Iterable[ScheduleFrame]:
    """One validated ``api.schedule`` frame per source, ascending."""
    from repro import api

    graph = api.build_graph(graph_spec)
    wanted = range(graph.n_vertices) if sources is None else sorted(set(sources))
    for source in wanted:
        result = api.schedule(graph, scheduler, source=source, k=k, seed=seed)
        if not result.found or result.frame is None or result.valid is not True:
            raise CorpusError(
                f"scheduler {scheduler!r} produced no valid schedule for "
                f"{graph_spec!r} source {source} (found={result.found}, "
                f"valid={result.valid}); a corpus only stores served answers"
            )
        yield result.frame


def build_corpus(
    out: str | Path,
    graph: str,
    scheduler: str = SCHEME_SCHEDULER,
    *,
    k: int | None = None,
    seed: int = 0,
    sources: Sequence[int] | None = None,
) -> int:
    """Generate and pack one group; returns the number of frames written.

    For multi-group corpora use :class:`CorpusWriter` directly (the CLI
    builds one group per invocation against a fresh file; append-merge
    is a deliberate non-goal of format v1).
    """
    if scheduler == SCHEME_SCHEDULER:
        frames: Iterable[ScheduleFrame] = _scheme_frames(graph, sources)
    else:
        frames = _scheduler_frames(graph, scheduler, sources, k=k, seed=seed)
    with CorpusWriter(out) as writer:
        for frame in frames:
            writer.add_frame(graph, scheduler, frame, k=k, seed=seed)
        if writer.n_frames == 0:
            raise CorpusError(f"no frames generated for corpus group {graph!r}")
    return writer.n_frames
