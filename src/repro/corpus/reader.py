"""Zero-copy corpus reading: mmap the file, slice frames in O(1).

:class:`CorpusReader` maps the whole corpus read-only and exposes each
section as a NumPy view over the mapping — nothing is copied at open
time, however many millions of frames the file holds.  ``frame_at(i)``
slices the three plane views with the per-frame bounds and wraps them
in a read-only :class:`~repro.frame.ScheduleFrame`; the slices are
contiguous ``int64``, so the frame constructor's
``ascontiguousarray``/freeze pass keeps the mmap-backed buffers as-is.
That makes corpus frames full citizens of the rest of the engine: the
per-graph validator caches key on the frame like any other, and
:class:`repro.engine.shm.PlaneRegistry` can export the planes to
workers (both pinned by ``tests/corpus``).

Lookup is the footer's group index: ``(graph spec, scheduler, k,
seed)`` → frame range, then a binary search over that range's
ascending ``source`` segment.  A miss is ``None`` from :meth:`lookup`
or a stable-coded :class:`CorpusKeyError` from :meth:`get`.
"""

from __future__ import annotations

import mmap
from pathlib import Path
from typing import Any

import numpy as np

from repro.corpus import format as corpus_format
from repro.errors import CorpusFormatError, CorpusKeyError
from repro.frame import ScheduleFrame

__all__ = ["CorpusReader"]


class CorpusReader:
    """Read-only mmap view of one packed corpus file."""

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._file = open(self._path, "rb")
        try:
            self._mmap = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:
            self._file.close()
            raise CorpusFormatError(
                f"corpus file {self._path} is empty"
            ) from None
        loaded = False
        try:
            self._load()
            loaded = True
        finally:
            if not loaded:
                self.close()

    def _load(self) -> None:
        size = len(self._mmap)
        corpus_format.unpack_header(self._mmap[: corpus_format.HEADER_SIZE])
        footer_off, footer_len = corpus_format.unpack_trailer(
            self._mmap[max(0, size - corpus_format.TRAILER_SIZE) :]
        )
        if footer_off + footer_len + corpus_format.TRAILER_SIZE > size:
            raise CorpusFormatError(
                f"corpus trailer points past end of file "
                f"(footer at {footer_off}+{footer_len}, file is {size} bytes)"
            )
        self._meta, self._groups, self._n_frames = corpus_format.decode_footer(
            self._mmap[footer_off : footer_off + footer_len]
        )
        self._sections: dict[str, np.ndarray] = {}
        for name in corpus_format.SECTION_NAMES:
            info = self._meta[name]
            offset, count = info["offset"], info["count"]
            if offset < corpus_format.HEADER_SIZE or offset + count * 8 > footer_off:
                raise CorpusFormatError(
                    f"corpus section {name!r} lies outside the data region"
                )
            self._sections[name] = np.frombuffer(
                self._mmap, dtype="<i8", count=count, offset=offset
            )
        self._check_bounds()
        self._index = {g.key: g for g in self._groups}
        self._frames: dict[int, ScheduleFrame] = {}

    def _check_bounds(self) -> None:
        n = self._n_frames
        sections = self._sections
        if sections["source"].size != n:
            raise CorpusFormatError(
                f"corpus 'source' plane has {sections['source'].size} entries "
                f"for {n} frames"
            )
        for bounds_name, plane_name in (
            ("pv_bounds", "path_verts"),
            ("co_bounds", "call_offsets"),
            ("ro_bounds", "round_offsets"),
        ):
            bounds = sections[bounds_name]
            plane = sections[plane_name]
            if (
                bounds.size != n + 1
                or (n >= 0 and (int(bounds[0]) != 0 or int(bounds[-1]) != plane.size))
                or (np.diff(bounds) < 0).any()
            ):
                raise CorpusFormatError(
                    f"corpus {bounds_name!r} is not a prefix-bounds array "
                    f"over {plane_name!r}"
                )
        for group in self._groups:
            segment = sections["source"][group.lo : group.hi]
            if segment.size and (np.diff(segment) <= 0).any():
                raise CorpusFormatError(
                    f"corpus group {group.key!r} sources are not "
                    "strictly ascending"
                )

    # -- shape ---------------------------------------------------------------

    @property
    def path(self) -> Path:
        return self._path

    @property
    def n_frames(self) -> int:
        return self._n_frames

    @property
    def groups(self) -> list[corpus_format.GroupInfo]:
        return list(self._groups)

    def __len__(self) -> int:
        return self._n_frames

    def section(self, name: str) -> np.ndarray:
        """The raw mmap-backed view of one section (read-only)."""
        return self._sections[name]

    def section_meta(self, name: str) -> dict[str, Any]:
        """The footer's ``{offset, count, sha256}`` record for a section."""
        return dict(self._meta[name])

    def section_sha256(self, name: str) -> str:
        """The *actual* digest of a section's mapped bytes (recomputed)."""
        info = self._meta[name]
        view = memoryview(self._mmap)[
            info["offset"] : info["offset"] + info["count"] * 8
        ]
        return corpus_format.section_sha256(view)

    def stats(self) -> dict[str, Any]:
        """The summary payload behind ``repro corpus stats``."""
        return {
            "format": corpus_format.CORPUS_FORMAT,
            "path": str(self._path),
            "bytes": len(self._mmap),
            "n_frames": self._n_frames,
            "n_groups": len(self._groups),
            "path_verts": int(self._sections["path_verts"].size),
            "groups": [g.to_wire() for g in self._groups],
        }

    # -- lookup --------------------------------------------------------------

    def lookup(
        self,
        graph: str,
        scheduler: str,
        source: int,
        *,
        k: int | None = None,
        seed: int = 0,
    ) -> int | None:
        """The frame id for a key, or ``None`` if the corpus lacks it."""
        group = self._index.get((graph, scheduler, k, seed))
        if group is None:
            return None
        segment = self._sections["source"][group.lo : group.hi]
        pos = int(np.searchsorted(segment, source))
        if pos >= segment.size or int(segment[pos]) != source:
            return None
        return group.lo + pos

    def frame_at(self, fid: int) -> ScheduleFrame:
        """Frame ``fid`` as zero-copy read-only slices of the mapping."""
        frame = self._frames.get(fid)
        if frame is not None:
            return frame
        if not 0 <= fid < self._n_frames:
            raise CorpusKeyError(
                f"frame id {fid} out of range for a {self._n_frames}-frame corpus"
            )
        s = self._sections
        frame = ScheduleFrame(
            source=int(s["source"][fid]),
            path_verts=s["path_verts"][s["pv_bounds"][fid] : s["pv_bounds"][fid + 1]],
            call_offsets=s["call_offsets"][
                s["co_bounds"][fid] : s["co_bounds"][fid + 1]
            ],
            round_offsets=s["round_offsets"][
                s["ro_bounds"][fid] : s["ro_bounds"][fid + 1]
            ],
        )
        self._frames[fid] = frame
        return frame

    def get(
        self,
        graph: str,
        scheduler: str,
        source: int,
        *,
        k: int | None = None,
        seed: int = 0,
    ) -> ScheduleFrame:
        """Like :meth:`lookup` + :meth:`frame_at`, but a miss raises."""
        fid = self.lookup(graph, scheduler, source, k=k, seed=seed)
        if fid is None:
            raise CorpusKeyError(
                f"corpus has no frame for graph={graph!r} "
                f"scheduler={scheduler!r} k={k} source={source} seed={seed}"
            )
        return self.frame_at(fid)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drop the views and unmap.  The reader is unusable afterwards."""
        self._sections = {}
        self._frames = {}
        try:
            self._mmap.close()
        except BufferError:
            # a caller still holds zero-copy frames; the mapping lives
            # until they are collected, which is safe (read-only pages)
            pass
        self._file.close()

    def __enter__(self) -> "CorpusReader":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"CorpusReader({str(self._path)!r}, frames={self._n_frames}, "
            f"groups={len(self._groups)})"
        )
