"""On-disk layout of the packed schedule corpus (``repro-corpus/1``).

A corpus is **one** binary file holding many :class:`ScheduleFrame`
columns concatenated plane by plane, plus a JSON footer that indexes
them.  The layout, front to back:

``header`` (32 bytes, fixed)
    ``<8sII16s`` little-endian: the magic ``b"RPCORPUS"``, the format
    version (``1``), the header size (``32``), and 16 reserved zero
    bytes.  Readers reject anything else up front.
``sections`` (7 × int64 little-endian arrays, in :data:`SECTION_NAMES`
    order, each 8-byte aligned)
    ``path_verts``/``call_offsets``/``round_offsets`` are every frame's
    planes concatenated in frame order (offset arrays stay *local* to
    their frame, exactly as the frame holds them); ``source`` is one
    entry per frame; ``pv_bounds``/``co_bounds``/``ro_bounds`` are
    ``n_frames + 1`` prefix bounds so frame ``i`` is three O(1) slices.
``footer`` (canonical JSON: sorted keys, compact separators)
    the format marker, ``n_frames``, a section table (byte offset,
    element count, and sha256 per section), and the group index — one
    entry per ``(graph spec, scheduler, k, seed)`` build group mapping
    to a frame range ``[lo, hi)`` whose ``source`` plane segment is
    strictly ascending (so per-source lookup is a binary search).
``trailer`` (24 bytes, fixed)
    ``<QQ8s``: footer byte offset, footer byte length, and the magic
    again — a reader seeks here first, then jumps to the footer.

Everything numeric in the planes is little-endian ``int64``; the file
is self-describing and mmap-friendly by construction.  The header,
trailer, and footer bytes are golden-pinned by ``tests/corpus`` the
same way the io v2 writers are: changing any of them is a format break
and must bump :data:`CORPUS_VERSION`.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import CorpusFormatError

__all__ = [
    "CORPUS_FORMAT",
    "CORPUS_VERSION",
    "MAGIC",
    "HEADER_SIZE",
    "TRAILER_SIZE",
    "SECTION_NAMES",
    "GroupInfo",
    "pack_header",
    "unpack_header",
    "pack_trailer",
    "unpack_trailer",
    "encode_footer",
    "decode_footer",
    "section_sha256",
]

CORPUS_FORMAT = "repro-corpus/1"
CORPUS_VERSION = 1
MAGIC = b"RPCORPUS"

# magic, version, header size, reserved (zeros)
_HEADER = struct.Struct("<8sII16s")
# footer offset, footer length, magic
_TRAILER = struct.Struct("<QQ8s")

HEADER_SIZE = _HEADER.size
TRAILER_SIZE = _TRAILER.size

# Fixed on-disk section order; all sections are little-endian int64.
SECTION_NAMES = (
    "path_verts",
    "call_offsets",
    "round_offsets",
    "source",
    "pv_bounds",
    "co_bounds",
    "ro_bounds",
)


@dataclass(frozen=True)
class GroupInfo:
    """One build group: a key mapping to the frame range ``[lo, hi)``."""

    graph: str
    scheduler: str
    k: int | None
    seed: int
    lo: int
    hi: int

    @property
    def key(self) -> tuple[str, str, int | None, int]:
        return (self.graph, self.scheduler, self.k, self.seed)

    @property
    def n_frames(self) -> int:
        return self.hi - self.lo

    def to_wire(self) -> dict[str, Any]:
        return {
            "graph": self.graph,
            "scheduler": self.scheduler,
            "k": self.k,
            "seed": self.seed,
            "lo": self.lo,
            "hi": self.hi,
        }


def pack_header() -> bytes:
    """The fixed 32-byte file header."""
    return _HEADER.pack(MAGIC, CORPUS_VERSION, HEADER_SIZE, b"\x00" * 16)


def unpack_header(buf: bytes) -> None:
    """Validate a header; raises :class:`CorpusFormatError` if not ours."""
    if len(buf) < HEADER_SIZE:
        raise CorpusFormatError(
            f"corpus file too short for a header ({len(buf)} bytes)"
        )
    magic, version, header_size, _reserved = _HEADER.unpack(buf[:HEADER_SIZE])
    if magic != MAGIC:
        raise CorpusFormatError(
            f"not a corpus file: bad magic {magic!r} (expected {MAGIC!r})"
        )
    if version != CORPUS_VERSION:
        raise CorpusFormatError(
            f"unsupported corpus version {version} "
            f"(this reader supports {CORPUS_VERSION})"
        )
    if header_size != HEADER_SIZE:
        raise CorpusFormatError(
            f"corpus header size {header_size} != {HEADER_SIZE}"
        )


def pack_trailer(footer_offset: int, footer_size: int) -> bytes:
    """The fixed 24-byte end-of-file trailer."""
    return _TRAILER.pack(footer_offset, footer_size, MAGIC)


def unpack_trailer(buf: bytes) -> tuple[int, int]:
    """``(footer_offset, footer_size)``; raises on a foreign trailer."""
    if len(buf) < TRAILER_SIZE:
        raise CorpusFormatError(
            f"corpus file too short for a trailer ({len(buf)} bytes)"
        )
    offset, size, magic = _TRAILER.unpack(buf[-TRAILER_SIZE:])
    if magic != MAGIC:
        raise CorpusFormatError(
            f"not a corpus file: bad trailer magic {magic!r}"
        )
    return int(offset), int(size)


def encode_footer(
    sections: Mapping[str, Mapping[str, Any]], groups: list[GroupInfo], n_frames: int
) -> bytes:
    """Canonical footer bytes (sorted keys, compact — byte-pinned)."""
    payload = {
        "format": CORPUS_FORMAT,
        "n_frames": n_frames,
        "sections": {name: dict(sections[name]) for name in SECTION_NAMES},
        "groups": [g.to_wire() for g in groups],
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def decode_footer(
    data: bytes,
) -> tuple[dict[str, dict[str, Any]], list[GroupInfo], int]:
    """Parse and validate footer bytes back into the section/group tables."""
    try:
        payload = json.loads(data)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CorpusFormatError(f"corpus footer is not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or payload.get("format") != CORPUS_FORMAT:
        raise CorpusFormatError(
            f"corpus footer format marker is "
            f"{payload.get('format') if isinstance(payload, dict) else payload!r}"
            f" (expected {CORPUS_FORMAT!r})"
        )
    n_frames = payload.get("n_frames")
    if not isinstance(n_frames, int) or isinstance(n_frames, bool) or n_frames < 0:
        raise CorpusFormatError("corpus footer field 'n_frames' must be an int >= 0")
    sections = payload.get("sections")
    if not isinstance(sections, dict) or set(sections) != set(SECTION_NAMES):
        raise CorpusFormatError(
            f"corpus footer must describe exactly the sections "
            f"{', '.join(SECTION_NAMES)}"
        )
    for name in SECTION_NAMES:
        info = sections[name]
        if (
            not isinstance(info, dict)
            or not isinstance(info.get("offset"), int)
            or not isinstance(info.get("count"), int)
            or not isinstance(info.get("sha256"), str)
        ):
            raise CorpusFormatError(
                f"corpus section {name!r} needs int 'offset'/'count' "
                "and a 'sha256' hex string"
            )
    raw_groups = payload.get("groups")
    if not isinstance(raw_groups, list):
        raise CorpusFormatError("corpus footer field 'groups' must be a list")
    groups = []
    for raw in raw_groups:
        if not isinstance(raw, dict):
            raise CorpusFormatError("corpus group entries must be objects")
        try:
            group = GroupInfo(
                graph=raw["graph"],
                scheduler=raw["scheduler"],
                k=raw["k"],
                seed=raw["seed"],
                lo=raw["lo"],
                hi=raw["hi"],
            )
        except KeyError as exc:
            raise CorpusFormatError(
                f"corpus group entry is missing field {exc.args[0]!r}"
            ) from None
        if (
            not isinstance(group.graph, str)
            or not isinstance(group.scheduler, str)
            or not (group.k is None or isinstance(group.k, int))
            or not isinstance(group.seed, int)
            or not isinstance(group.lo, int)
            or not isinstance(group.hi, int)
            or not 0 <= group.lo <= group.hi <= n_frames
        ):
            raise CorpusFormatError(
                f"corpus group entry for {group.graph!r} is malformed"
            )
        groups.append(group)
    return (
        {name: dict(sections[name]) for name in SECTION_NAMES},
        groups,
        n_frames,
    )


def section_sha256(data: bytes | memoryview) -> str:
    """The hex content digest recorded per section in the footer."""
    return hashlib.sha256(data).hexdigest()
