"""Corpus verification: digests, structure, and a re-validated sample.

``repro corpus verify`` answers two questions about a packed file:

* **Are the bytes intact?**  Every section's sha256 is recomputed over
  the mapped bytes and compared against the footer record (the reader
  has already rejected malformed headers/footers/bounds by the time we
  get here).
* **Are the schedules still true?**  A seeded sample of frames is
  sliced out and re-validated against the reference validator — the
  repo's oracle — on the group's own graph under the group's effective
  ``k`` bound.  The sample is deterministic in ``(corpus, seed)``, so
  CI reruns check the same slice.

The report is a value, not an exception: callers inspect ``ok`` and the
error strings.  The CLI raises :class:`CorpusIntegrityError` from a
failed report so the standard exit-2 error contract applies.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.corpus.format import GroupInfo
from repro.corpus.reader import CorpusReader
from repro.errors import format_cause
from repro.types import ReproError

__all__ = ["VerifyReport", "verify_corpus"]


@dataclass
class VerifyReport:
    """The outcome of one :func:`verify_corpus` run."""

    path: str
    n_frames: int
    n_groups: int
    sections_checked: int
    sampled: int
    revalidated: int
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def to_wire(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "ok": self.ok,
            "n_frames": self.n_frames,
            "n_groups": self.n_groups,
            "sections_checked": self.sections_checked,
            "sampled": self.sampled,
            "revalidated": self.revalidated,
            "errors": list(self.errors),
        }


def _group_for(groups: list[GroupInfo], fid: int) -> GroupInfo | None:
    los = [g.lo for g in groups]
    pos = bisect_right(los, fid) - 1
    if pos >= 0 and groups[pos].lo <= fid < groups[pos].hi:
        return groups[pos]
    return None


def _graph_for(group: GroupInfo) -> Any:
    from repro import api

    if group.scheduler == "scheme":
        return api.construction(group.graph).graph
    return api.build_graph(group.graph)


def verify_corpus(
    path: str | Path,
    *,
    sample: int = 8,
    seed: int = 0,
    engine: str = "reference",
) -> VerifyReport:
    """Check digests and re-validate a seeded sample slice.

    Raises :class:`~repro.errors.CorpusFormatError` if the file is not
    a readable corpus at all; every *content* problem (bad digest,
    orphan frame, failed re-validation) lands in the report's errors.
    """
    from repro import api
    from repro.corpus import format as corpus_format

    with CorpusReader(path) as reader:
        report = VerifyReport(
            path=str(reader.path),
            n_frames=reader.n_frames,
            n_groups=len(reader.groups),
            sections_checked=0,
            sampled=0,
            revalidated=0,
        )
        for name in corpus_format.SECTION_NAMES:
            recorded = reader.section_meta(name)["sha256"]
            actual = reader.section_sha256(name)
            report.sections_checked += 1
            if actual != recorded:
                report.errors.append(
                    f"section {name!r} digest mismatch: footer records "
                    f"{recorded[:12]}…, bytes hash to {actual[:12]}…"
                )
        if report.errors:
            return report  # bytes are bad; re-validating them proves nothing

        groups = reader.groups
        covered = sum(g.n_frames for g in groups)
        if covered != reader.n_frames:
            report.errors.append(
                f"group index covers {covered} of {reader.n_frames} frames"
            )
        rng = random.Random(seed)
        n = min(sample, reader.n_frames)
        fids = sorted(rng.sample(range(reader.n_frames), n))
        report.sampled = len(fids)
        graphs: dict[str, Any] = {}
        for fid in fids:
            group = _group_for(groups, fid)
            if group is None:
                report.errors.append(f"frame {fid} belongs to no group")
                continue
            try:
                graph = graphs.get(group.graph)
                if graph is None:
                    graph = _graph_for(group)
                    graphs[group.graph] = graph
                frame = reader.frame_at(fid)
                k = (
                    group.k
                    if group.k is not None
                    else max(1, graph.n_vertices - 1)
                )
                verdict = api.validate(
                    graph, frame, k, engine=engine, require_minimum_time=True
                )
            except (ReproError, ValueError, KeyError) as exc:
                report.errors.append(
                    f"frame {fid} ({group.scheduler} on {group.graph}): "
                    f"{format_cause(exc)}"
                )
                continue
            if verdict.ok:
                report.revalidated += 1
            else:
                report.errors.append(
                    f"frame {fid} (source {frame.source}, {group.scheduler} "
                    f"on {group.graph}) failed re-validation: "
                    f"{'; '.join(verdict.errors) or 'not ok'}"
                )
        return report
