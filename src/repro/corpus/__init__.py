"""The packed schedule corpus (``repro corpus``, ``repro serve --corpus``).

One binary file, millions of frames, O(1) answers: the corpus is the
precomputed-answer store behind the service — generate once (per coset
where the construction's translation symmetry allows), serve forever.
Layering, bottom up:

:mod:`repro.corpus.format`
    the ``repro-corpus/1`` on-disk layout — fixed little-endian header
    and trailer, concatenated int64 section planes, a canonical-JSON
    footer with per-section sha256 digests and the
    ``(graph spec, scheduler, k, seed)`` group index.  Golden
    byte-pinned like the io v2 writers.
:mod:`repro.corpus.writer`
    the streaming append builder and the ``build`` front-end (coset
    derivation for the paper's scheme, per-source ``api.schedule`` runs
    for registry schedulers).
:mod:`repro.corpus.reader`
    mmap loading and zero-copy frame slicing into read-only
    :class:`~repro.frame.ScheduleFrame` views that feed the engine
    caches and shm planes unchanged.
:mod:`repro.corpus.verify`
    digest checks plus re-validation of a seeded sample slice against
    the reference validator.

This package is also the RL011 lint boundary: raw ``struct``/``mmap``
corpus-file access lives here and nowhere else.
"""

from repro.corpus.format import CORPUS_FORMAT, CORPUS_VERSION
from repro.corpus.reader import CorpusReader
from repro.corpus.verify import VerifyReport, verify_corpus
from repro.corpus.writer import CorpusWriter, build_corpus

__all__ = [
    "CORPUS_FORMAT",
    "CORPUS_VERSION",
    "CorpusReader",
    "CorpusWriter",
    "VerifyReport",
    "build_corpus",
    "verify_corpus",
]
