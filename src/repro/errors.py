"""Structured error taxonomy for the fault-tolerant execution layer.

Everything that can go wrong while *executing* work (as opposed to the
domain errors in :mod:`repro.types` — invalid parameters, invalid
schedules, construction invariants) is classified here, because the
retry machinery needs to tell the two kinds apart:

* :class:`ExecutionError` subclasses are **infrastructure faults** — a
  worker process died, a task blew its deadline, a shared-memory
  segment could not be attached.  They are transient by nature and the
  sanctioned response is the retry/quarantine discipline of
  :mod:`repro.util.retry` and :class:`repro.util.pool.WorkerPool`.
* :class:`ScenarioError` wraps a **task-level failure**: the scenario's
  own code raised.  Deterministic code errors are never retried — the
  same inputs would fail the same way — so they are captured once,
  attributed to their scenario id, and reported.

This module (together with :mod:`repro.util.retry`) is also the one
sanctioned *broad-exception boundary* in the library: lint rule RL010
bans ``except Exception`` elsewhere, so catch-alls funnel through
:func:`capture` / :func:`captured_call` and every swallowed exception
is accounted for instead of silently discarded.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Literal, TypeVar

from repro.types import ReproError

__all__ = [
    "ReproError",
    "ExecutionError",
    "WorkerCrash",
    "TaskTimeout",
    "ShmAttachError",
    "ScenarioError",
    "CorpusError",
    "CorpusFormatError",
    "CorpusIntegrityError",
    "CorpusKeyError",
    "error_code",
    "format_cause",
    "capture",
    "captured_call",
]

_R = TypeVar("_R")


class ExecutionError(ReproError):
    """An infrastructure fault in the parallel execution stack.

    Subclasses are the *retryable* family: the failure is a property of
    the process/OS environment (a killed worker, a missed deadline, a
    vanished shared-memory segment), not of the task's inputs, so
    re-running the task is meaningful.
    """

    code = "execution-error"


class WorkerCrash(ExecutionError):
    """A worker process died without delivering its result.

    Detected by the pool through the process sentinel (the
    ``BrokenProcessPool`` analogue for the repo's own worker pool);
    carries the observed exit code and how many attempts the affected
    task has consumed.
    """

    code = "worker-crash"

    def __init__(
        self,
        message: str,
        *,
        exitcode: int | None = None,
        attempts: int = 1,
    ) -> None:
        super().__init__(message)
        self.exitcode = exitcode
        self.attempts = attempts


class TaskTimeout(ExecutionError):
    """A task exceeded its per-task deadline and its worker was culled."""

    code = "task-timeout"

    def __init__(
        self,
        message: str,
        *,
        seconds: float | None = None,
        attempts: int = 1,
    ) -> None:
        super().__init__(message)
        self.seconds = seconds
        self.attempts = attempts


class ShmAttachError(ExecutionError):
    """A shared-memory plane could not be exported or attached.

    Raised by :mod:`repro.engine.shm` wherever the OS layer fails (or
    the chaos harness injects a failure); the parallel engine responds
    by degrading to pickled-copy transport and ultimately to the serial
    path (:mod:`repro.engine.parallel`), never by aborting.
    """

    code = "shm-attach-error"

    def __init__(self, message: str, *, name: str | None = None) -> None:
        super().__init__(message)
        self.name = name


class ScenarioError(ReproError):
    """A campaign scenario's own code raised.

    Keeps the scenario identity next to the cause so a campaign report
    can say *which* grid point failed and why, instead of surfacing a
    bare traceback string torn from its context.
    """

    code = "scenario-error"

    def __init__(self, scenario_id: str, cause: str) -> None:
        super().__init__(f"scenario {scenario_id}: {cause}")
        self.scenario_id = scenario_id
        self.cause = cause


class CorpusError(ReproError):
    """Something is wrong with a packed schedule corpus file.

    The family root for :mod:`repro.corpus`.  Subclasses distinguish
    the three failure classes a corpus consumer cares about: the file
    is not a corpus at all (:class:`CorpusFormatError`), the file *is*
    a corpus but its bytes do not match its digests
    (:class:`CorpusIntegrityError`), and a lookup key is simply absent
    (:class:`CorpusKeyError`).  All codes are stable and mapped to HTTP
    statuses in :mod:`repro.service.protocol`.
    """

    code = "corpus-error"


class CorpusFormatError(CorpusError):
    """The file is not a readable corpus (bad magic, version, layout)."""

    code = "corpus-format-error"


class CorpusIntegrityError(CorpusError):
    """A section's bytes do not match the footer's recorded digest."""

    code = "corpus-integrity-error"


class CorpusKeyError(CorpusError):
    """A strict lookup found no frame for the requested key."""

    code = "corpus-miss"


def error_code(exc: BaseException) -> str:
    """The stable machine-readable code for an exception.

    :class:`ReproError` subclasses carry their own ``code``; the few
    non-library types that legitimately cross the CLI/service boundary
    get fixed spellings here.  Everything else is ``internal-error`` —
    an unclassified failure is a bug, and the code says so.
    """
    if isinstance(exc, ReproError):
        return exc.code
    if isinstance(exc, KeyError):
        return "unknown-name"
    if isinstance(exc, OSError):
        return "io-error"
    if isinstance(exc, ValueError):
        return "invalid-parameter"
    return "internal-error"


def format_cause(exc: BaseException) -> str:
    """The canonical one-line rendering of a captured exception."""
    return f"{type(exc).__name__}: {exc}"


def capture(
    fn: Callable[..., _R], *args: object, **kwargs: object
) -> tuple[Literal["ok"], _R] | tuple[Literal["error"], str]:
    """Run ``fn`` and return ``("ok", result)`` or ``("error", cause)``.

    The sanctioned broad-exception boundary (RL010): failures come back
    as *values* so a parent process can account for every completed
    sibling task before deciding what to do — the resumable-run
    contract of the campaign runner.  ``KeyboardInterrupt``/``SystemExit``
    still propagate.
    """
    try:
        return "ok", fn(*args, **kwargs)
    except Exception as exc:  # the one sanctioned catch-all (RL010)
        return "error", format_cause(exc)


def captured_call(
    fn: Callable[..., _R], *args: object, **kwargs: object
) -> tuple[Literal["ok"], _R] | tuple[Literal["raise"], BaseException]:
    """Like :func:`capture` but keeps the exception *object*.

    Used by the worker pool's child loop: the original exception is
    shipped back over the result pipe so the parent re-raises the real
    type (pinned by the pool tests), not a stringified shadow.
    """
    try:
        return "ok", fn(*args, **kwargs)
    except Exception as exc:  # the one sanctioned catch-all (RL010)
        return "raise", exc
