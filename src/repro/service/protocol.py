"""The service wire format, version 1 (``repro-service/1``).

Frozen typed dataclasses for every request and response body, JSON
codecs whose bytes are canonical (sorted keys, compact separators —
golden-pinned like the io v2 schedule codec), and the stable mapping
from the :mod:`repro.errors` code taxonomy onto HTTP statuses.

Design rules:

* Requests carry *textual specs*, not graph payloads: the service's
  whole value is spec-keyed cache reuse, and
  :func:`repro.api.build_graph` / :func:`repro.api.construction` are
  the one parsing path shared with the CLI.
* Schedules on the wire are io v2 columnar payloads
  (:func:`repro.io.frame_to_dict`), so a served schedule round-trips
  byte-identically through ``repro schedule --out`` files.
* Error bodies are machine-readable first: ``{"error": {"code": ...,
  "message": ...}}`` where ``code`` is exactly what
  :func:`repro.errors.error_code` returns — the same string the CLI
  puts in its exit-2 one-liners.
* The certificate response body is the *raw certificate JSON* in
  insertion order (``separators=(",", ":")``), byte-identical to a
  :func:`repro.io.dump_certificate` file for the same construction —
  pinned by the e2e test and the CI serve job.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.types import InvalidParameterError

__all__ = [
    "SERVICE_FORMAT",
    "ScheduleRequestV1",
    "ScheduleResponseV1",
    "ValidateRequestV1",
    "ReportV1",
    "ValidateResponseV1",
    "CertificateRequestV1",
    "ErrorV1",
    "HTTP_STATUS_BY_CODE",
    "http_status_for",
    "encode_canonical",
    "encode_certificate_payload",
    "decode_schedule_request",
    "decode_validate_request",
    "decode_certificate_request",
]

SERVICE_FORMAT = "repro-service/1"

# Stable error-code -> HTTP status.  Append-only: a published code
# never changes its status class (pinned by tests/service tests).
# 4xx = the request is at fault (re-sending it unchanged cannot
# succeed); 503 = transient infrastructure fault (retryable, the
# ExecutionError family); 500 = a bug or unclassified failure.
HTTP_STATUS_BY_CODE: dict[str, int] = {
    "bad-request": 400,
    "invalid-parameter": 400,
    "unknown-name": 404,
    "not-found": 404,
    "method-not-allowed": 405,
    "invalid-schedule": 422,
    "execution-error": 503,
    "worker-crash": 503,
    "task-timeout": 503,
    "shm-attach-error": 503,
    "scenario-error": 500,
    "construction-error": 500,
    "overloaded": 503,
    "corpus-miss": 404,
    "corpus-error": 500,
    "corpus-format-error": 500,
    "corpus-integrity-error": 500,
    "io-error": 500,
    "repro-error": 500,
    "internal-error": 500,
}


def http_status_for(code: str) -> int:
    """The HTTP status for an error code (unknown codes are 500)."""
    return HTTP_STATUS_BY_CODE.get(code, 500)


# ---------------------------------------------------------------------------
# request/response dataclasses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScheduleRequestV1:
    """``POST /v1/schedule``: run one registered scheduler on a spec."""

    graph: str
    scheduler: str = "greedy"
    source: int = 0
    k: int | None = None
    rounds: int | None = None
    seed: int = 0
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ScheduleResponseV1:
    """The scheduler's answer; ``schedule`` is an io v2 payload."""

    scheduler: str
    graph: str
    source: int
    k: int | None
    found: bool
    rounds: int | None
    valid: bool | None
    n_calls: int | None
    schedule: Mapping[str, Any] | None

    def to_wire(self) -> dict[str, Any]:
        return {
            "format": SERVICE_FORMAT,
            "scheduler": self.scheduler,
            "graph": self.graph,
            "source": self.source,
            "k": self.k,
            "found": self.found,
            "rounds": self.rounds,
            "valid": self.valid,
            "n_calls": self.n_calls,
            "schedule": None if self.schedule is None else dict(self.schedule),
        }


@dataclass(frozen=True)
class ValidateRequestV1:
    """``POST /v1/validate``: check schedules against Definition 1.

    ``schedules`` holds io v2 columnar payloads.  ``engine`` is one of
    :data:`repro.api.ENGINES`; under the coalescer it only selects the
    *serial fallback* — coalesced buckets always run the batch engine,
    which produces byte-identical verdicts by construction.
    """

    graph: str
    k: int
    schedules: tuple[Mapping[str, Any], ...]
    engine: str = "auto"
    require_minimum_time: bool = True
    vertex_disjoint: bool = False


@dataclass(frozen=True)
class ReportV1:
    """One validation verdict (mirrors ``ValidationReport``)."""

    ok: bool
    rounds: int
    max_call_length: int
    errors: tuple[str, ...]

    def to_wire(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "rounds": self.rounds,
            "max_call_length": self.max_call_length,
            "errors": list(self.errors),
        }


@dataclass(frozen=True)
class ValidateResponseV1:
    """Reports in request order, plus how the batch was executed."""

    graph: str
    k: int
    reports: tuple[ReportV1, ...]
    coalesced: bool = False

    def to_wire(self) -> dict[str, Any]:
        return {
            "format": SERVICE_FORMAT,
            "graph": self.graph,
            "k": self.k,
            "coalesced": self.coalesced,
            "reports": [r.to_wire() for r in self.reports],
        }


@dataclass(frozen=True)
class CertificateRequestV1:
    """``POST /v1/certificate``: a k-mlbg certificate for a construction."""

    construction: str
    sources: tuple[int, ...] | None = None


@dataclass(frozen=True)
class ErrorV1:
    """A machine-readable failure; ``code`` keys the HTTP status."""

    code: str
    message: str

    def to_wire(self) -> dict[str, Any]:
        return {
            "format": SERVICE_FORMAT,
            "error": {"code": self.code, "message": self.message},
        }

    @property
    def status(self) -> int:
        return http_status_for(self.code)


# ---------------------------------------------------------------------------
# codecs
# ---------------------------------------------------------------------------


def encode_canonical(payload: Mapping[str, Any]) -> bytes:
    """Canonical response bytes: sorted keys, compact separators.

    The service analogue of the io v2 writer — golden tests pin the
    exact bytes, so changing this function is a wire-format break.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def encode_certificate_payload(payload: Mapping[str, Any]) -> bytes:
    """Certificate bytes in *insertion* order, matching file output.

    A served certificate must be byte-identical to what
    :func:`repro.io.dump_certificate` writes for the same construction
    (the CI serve job byte-compares them), and the v1 certificate bytes
    are already golden-pinned in insertion order — so this writer is
    deliberately not canonicalized.
    """
    # byte-compat with dump_certificate is the contract here
    return json.dumps(  # repro-lint: disable=RL002
        dict(payload), separators=(",", ":")
    ).encode("utf-8")


def _bad(message: str) -> InvalidParameterError:
    return InvalidParameterError(message)


def _get_str(data: Mapping[str, Any], key: str, default: str | None = None) -> str:
    value = data.get(key, default)
    if not isinstance(value, str) or not value:
        raise _bad(f"field {key!r} must be a non-empty string")
    return value


def _get_int(data: Mapping[str, Any], key: str, default: int) -> int:
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise _bad(f"field {key!r} must be an integer")
    return value


def _get_opt_int(data: Mapping[str, Any], key: str) -> int | None:
    value = data.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise _bad(f"field {key!r} must be an integer or null")
    return value


def _get_bool(data: Mapping[str, Any], key: str, default: bool) -> bool:
    value = data.get(key, default)
    if not isinstance(value, bool):
        raise _bad(f"field {key!r} must be a boolean")
    return value


def _reject_unknown(data: Mapping[str, Any], known: tuple[str, ...]) -> None:
    unknown = sorted(set(data) - set(known))
    if unknown:
        raise _bad(f"unknown field(s) {', '.join(map(repr, unknown))}")


def decode_schedule_request(data: Any) -> ScheduleRequestV1:
    if not isinstance(data, dict):
        raise _bad("request body must be a JSON object")
    _reject_unknown(
        data, ("graph", "scheduler", "source", "k", "rounds", "seed", "params")
    )
    params = data.get("params", {})
    if not isinstance(params, dict) or not all(isinstance(p, str) for p in params):
        raise _bad("field 'params' must be an object with string keys")
    return ScheduleRequestV1(
        graph=_get_str(data, "graph"),
        scheduler=_get_str(data, "scheduler", "greedy"),
        source=_get_int(data, "source", 0),
        k=_get_opt_int(data, "k"),
        rounds=_get_opt_int(data, "rounds"),
        seed=_get_int(data, "seed", 0),
        params=params,
    )


def decode_validate_request(data: Any) -> ValidateRequestV1:
    if not isinstance(data, dict):
        raise _bad("request body must be a JSON object")
    _reject_unknown(
        data,
        (
            "graph",
            "k",
            "schedules",
            "engine",
            "require_minimum_time",
            "vertex_disjoint",
        ),
    )
    schedules = data.get("schedules")
    if (
        not isinstance(schedules, list)
        or not schedules
        or not all(isinstance(s, dict) for s in schedules)
    ):
        raise _bad("field 'schedules' must be a non-empty list of v2 payloads")
    k = data.get("k")
    if isinstance(k, bool) or not isinstance(k, int):
        raise _bad("field 'k' must be an integer")
    return ValidateRequestV1(
        graph=_get_str(data, "graph"),
        k=k,
        schedules=tuple(schedules),
        engine=_get_str(data, "engine", "auto"),
        require_minimum_time=_get_bool(data, "require_minimum_time", True),
        vertex_disjoint=_get_bool(data, "vertex_disjoint", False),
    )


def decode_certificate_request(data: Any) -> CertificateRequestV1:
    if not isinstance(data, dict):
        raise _bad("request body must be a JSON object")
    _reject_unknown(data, ("construction", "sources"))
    sources = data.get("sources")
    if sources is not None:
        if not isinstance(sources, list) or not all(
            isinstance(s, int) and not isinstance(s, bool) for s in sources
        ):
            raise _bad("field 'sources' must be a list of integers or null")
        sources = tuple(sources)
    return CertificateRequestV1(
        construction=_get_str(data, "construction"),
        sources=sources,
    )
