"""A minimal HTTP/1.1 layer over asyncio streams.

Just enough protocol for the service: request line + headers,
``Content-Length`` bodies, keep-alive connections, and fixed-length
responses.  Deliberately not a framework — no chunked encoding, no
multipart, no TLS — because the daemon speaks exactly one dialect:
JSON bodies over POST/GET on a trusted interface.

The parser is strict where it is cheap to be (malformed framing closes
the connection) and bounded everywhere (header block and body sizes are
capped) so a confused client cannot pin server memory.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.types import InvalidParameterError

__all__ = [
    "HttpRequest",
    "MAX_BODY_BYTES",
    "read_request",
    "render_response",
    "STATUS_REASONS",
]

MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 64 * 1024 * 1024  # stacked v2 payloads can be large

STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request: method, path, lower-cased headers, raw body."""

    method: str
    path: str
    headers: dict[str, str]
    body: bytes

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`InvalidParameterError` on malformed framing — the
    connection handler answers 400 and closes.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise InvalidParameterError("truncated HTTP request") from None
    except asyncio.LimitOverrunError:
        raise InvalidParameterError("HTTP header block too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise InvalidParameterError("HTTP header block too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise InvalidParameterError(f"malformed request line {lines[0]!r}")
    method, path, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise InvalidParameterError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise InvalidParameterError(
            f"malformed Content-Length {length_text!r}"
        ) from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise InvalidParameterError(f"Content-Length {length} out of range")
    body = await reader.readexactly(length) if length else b""
    return HttpRequest(method=method, path=path, headers=headers, body=body)


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Serialize one fixed-length response.

    ``extra_headers`` are emitted verbatim between ``Content-Length``
    and ``Connection`` (the service uses this for ``Retry-After`` on
    503 connection sheds).
    """
    reason = STATUS_REASONS.get(status, "Unknown")
    extras = "".join(
        f"{name}: {value}\r\n" for name, value in (extra_headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extras}"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body
