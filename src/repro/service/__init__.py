"""The long-running schedule service (``repro serve``).

A stdlib-only asyncio HTTP daemon over the :mod:`repro.api` facade.
Layering, bottom up:

:mod:`repro.service.protocol`
    the versioned wire format: frozen typed request/response
    dataclasses, canonical JSON codecs (byte-pinned like io v2), and
    the stable error-code → HTTP-status mapping.
:mod:`repro.service.http`
    a minimal HTTP/1.1 reader/writer over asyncio streams — just
    enough protocol for JSON-over-POST with keep-alive.
:mod:`repro.service.coalesce`
    the validate coalescer: concurrent ``POST /v1/validate`` calls for
    the same frozen graph are funnelled into single
    :mod:`repro.engine.batch` stacked passes (verdicts byte-identical
    to serial ``api.validate``; pinned by test).
:mod:`repro.service.app`
    the endpoint handlers, per-spec graph/construction caches,
    per-endpoint latency/hit counters, and the graceful-shutdown
    choreography (drain in-flight, shut the pool down,
    ``detach_all()`` the shm planes).

The point of the daemon is cache amortization: every request with the
same graph spec reuses one frozen :class:`~repro.graphs.base.Graph`
object, so the process-wide per-graph kernel/validator caches
(:mod:`repro.engine.cache`) hit on identity — see
``benchmarks/bench_serve.py`` for the measured cold/warm gap.
"""

from repro.service.app import ReproService, serve_forever

__all__ = ["ReproService", "serve_forever"]
