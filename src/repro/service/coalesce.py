"""Request coalescing: many concurrent validates, one batch pass.

Concurrent ``POST /v1/validate`` requests for the same *batch key*
(graph spec, k, validation flags) are funnelled into a single
:mod:`repro.engine.batch` stacked-validation pass.  The first request
to arrive opens a bucket and waits one collection window; everyone who
arrives inside the window appends their frames and parks on a future.
The opener then runs one ``engine="batch"`` pass over the concatenated
stack and slices the reports back out in arrival order.

Correctness does not depend on the window: the batch engine produces
verdicts byte-identical to serial :func:`repro.api.validate` for any
grouping (pinned by ``tests/service``), so coalescing only ever changes
*throughput* — one kernel launch and one layout grouping amortized over
every rider instead of per request.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from concurrent.futures import Executor

    from repro.frame import ScheduleFrame
    from repro.model.validator import ValidationReport

__all__ = ["BatchKey", "ValidateCoalescer"]


@dataclass(frozen=True)
class BatchKey:
    """What must agree for two validate requests to share a pass."""

    graph_spec: str
    k: int
    require_minimum_time: bool
    vertex_disjoint: bool


@dataclass
class _Bucket:
    """One open collection window: frames and who is waiting for them."""

    entries: list[tuple[int, "asyncio.Future[list[ValidationReport]]"]] = field(
        default_factory=list
    )
    frames: list["ScheduleFrame"] = field(default_factory=list)


# The synchronous batch runner the app supplies: (key, frames) -> reports.
BatchRunner = Callable[[BatchKey, Sequence["ScheduleFrame"]], "list[ValidationReport]"]


class ValidateCoalescer:
    """Buckets concurrent validates per :class:`BatchKey`.

    ``window`` is the collection window in seconds: how long the first
    arrival holds the bucket open for riders.  Zero still coalesces
    requests that are already queued on the event loop (one tick); the
    small default mostly catches independent sockets that arrive within
    the same scheduling burst.
    """

    def __init__(
        self,
        runner: BatchRunner,
        executor: "Executor",
        *,
        window: float = 0.002,
    ) -> None:
        self._runner = runner
        self._executor = executor
        self._window = window
        self._buckets: dict[BatchKey, _Bucket] = {}
        # counters surfaced on /v1/stats
        self.passes = 0  # batch-engine passes actually run
        self.requests = 0  # validate calls routed through the coalescer
        self.schedules = 0  # schedules validated
        self.coalesced_passes = 0  # passes that served >1 request

    async def validate(
        self, key: BatchKey, frames: Sequence["ScheduleFrame"]
    ) -> tuple["list[ValidationReport]", bool]:
        """Validate ``frames``; returns ``(reports, coalesced)``.

        ``coalesced`` is True when the pass that produced the reports
        also carried at least one other request's frames.
        """
        self.requests += 1
        self.schedules += len(frames)
        loop = asyncio.get_running_loop()
        bucket = self._buckets.get(key)
        if bucket is not None:
            # Ride an open window: park on a future, the opener delivers.
            future: "asyncio.Future[list[ValidationReport]]" = loop.create_future()
            bucket.entries.append((len(frames), future))
            bucket.frames.extend(frames)
            reports = await future
            return reports, True
        bucket = _Bucket()
        self._buckets[key] = bucket
        my_future: "asyncio.Future[list[ValidationReport]]" = loop.create_future()
        bucket.entries.append((len(frames), my_future))
        bucket.frames.extend(frames)
        await asyncio.sleep(self._window)
        # Close the window: later arrivals open a fresh bucket while the
        # engine pass for this one runs in the executor.
        del self._buckets[key]
        self.passes += 1
        riders = len(bucket.entries) > 1
        if riders:
            self.coalesced_passes += 1
        try:
            reports = await loop.run_in_executor(
                self._executor, self._runner, key, bucket.frames
            )
        except (Exception, asyncio.CancelledError) as exc:  # repro-lint: disable=RL010 (fan-out boundary: the failure is re-raised to the opener and mirrored onto every rider future; nothing is swallowed)
            for _count, future in bucket.entries[1:]:
                if not future.done():
                    future.set_exception(exc)
            raise
        offset = 0
        for index, (count, future) in enumerate(bucket.entries):
            share = reports[offset : offset + count]
            offset += count
            if index == 0:
                my_future.set_result(share)
            elif not future.done():
                future.set_result(share)
        return my_future.result(), riders
