"""The service endpoints, caches, stats, and shutdown choreography.

:class:`ReproService` is the transport-free core: ``dispatch(method,
path, body)`` maps one request onto the :mod:`repro.api` facade and
returns ``(status, body_bytes)``.  Tests and the load benchmark drive
it in-process; :func:`serve_forever` wraps it in the asyncio socket
server behind ``repro serve``.

Cache amortization — the reason the daemon exists — happens at two
levels keyed on the *spec string*:

* the graph/construction caches here map ``"sparse:9:3"`` to one frozen
  object, so every request for a spec sees the *same* ``Graph``
  identity, and
* the process-wide engine caches (:mod:`repro.engine.cache`) key on
  that identity, so kernels and validators are built once and hit
  forever after.

All blocking work (construction, scheduling, validation) runs on a
bounded thread pool; the event loop only parses, routes, and coalesces.
"""

from __future__ import annotations

import asyncio
import functools
import json
import signal
import time
from typing import Any, Awaitable, Callable, TypeVar

from repro.errors import captured_call, error_code
from repro.service import protocol
from repro.service.coalesce import BatchKey, ValidateCoalescer
from repro.service.http import read_request, render_response
from repro.types import InvalidParameterError, ReproError

__all__ = ["ReproService", "serve_forever"]

_T = TypeVar("_T")

ENDPOINTS = (
    "schedule",
    "validate",
    "certificate",
    "healthz",
    "stats",
)


class _EndpointStats:
    """Hit/error/latency counters for one endpoint."""

    __slots__ = ("count", "errors", "seconds")

    def __init__(self) -> None:
        self.count = 0
        self.errors = 0
        self.seconds = 0.0

    def to_wire(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "errors": self.errors,
            "seconds": round(self.seconds, 6),
        }


class ReproService:
    """The transport-free service core (see module docstring)."""

    def __init__(
        self,
        *,
        workers: int = 2,
        coalesce_window: float = 0.002,
        corpus: Any = None,
        max_connections: int | None = None,
        max_keepalive: int = 1000,
    ) -> None:
        if workers < 1:
            raise InvalidParameterError(f"--workers must be >= 1, got {workers}")
        if max_connections is not None and max_connections < 1:
            raise InvalidParameterError(
                f"--max-connections must be >= 1, got {max_connections}"
            )
        if max_keepalive < 1:
            raise InvalidParameterError(
                f"--max-keepalive must be >= 1, got {max_keepalive}"
            )
        from concurrent.futures import ThreadPoolExecutor

        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._graphs: dict[str, Any] = {}
        self._constructions: dict[str, Any] = {}
        self._coalescer = ValidateCoalescer(
            self._run_batch, self._executor, window=coalesce_window
        )
        self._stats = {name: _EndpointStats() for name in ENDPOINTS}
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._closing = False
        # the precomputed-answer cache: a CorpusReader, a path to open
        # one, or None (every schedule request runs a scheduler)
        if corpus is not None and not hasattr(corpus, "lookup"):
            from repro.corpus import CorpusReader

            corpus = CorpusReader(corpus)
        self._corpus = corpus
        self._corpus_hits = 0
        self._corpus_misses = 0
        self._max_connections = max_connections
        self._max_keepalive = max_keepalive
        self._connections = 0
        self._rejected = 0

    # -- caches -------------------------------------------------------------

    def _graph_for(self, spec: str) -> Any:
        graph = self._graphs.get(spec)
        if graph is None:
            from repro import api

            graph = api.build_graph(spec)
            self._graphs[spec] = graph
        return graph

    def _construction_for(self, spec: str) -> Any:
        sh = self._constructions.get(spec)
        if sh is None:
            from repro import api

            sh = api.construction(spec)
            self._constructions[spec] = sh
        return sh

    # -- endpoint implementations ------------------------------------------

    async def _offload(self, fn: Callable[[], _T]) -> _T:
        """Run blocking work on the pool; re-raise its real exception."""
        loop = asyncio.get_running_loop()
        tag, value = await loop.run_in_executor(self._executor, captured_call, fn)
        if tag == "raise":
            raise value  # type: ignore[misc]
        return value  # type: ignore[return-value]

    def _run_batch(self, key: BatchKey, frames: list) -> list:
        """The coalescer's engine pass: one stacked batch validation."""
        from repro import api

        reports = api.validate(
            self._graph_for(key.graph_spec),
            frames,
            key.k,
            engine="batch",
            require_minimum_time=key.require_minimum_time,
            vertex_disjoint=key.vertex_disjoint,
        )
        return list(reports) if isinstance(reports, list) else [reports]

    def _corpus_response(
        self, request: protocol.ScheduleRequestV1
    ) -> tuple[int, bytes] | None:
        """A corpus-hit answer, or ``None`` when the scheduler must run.

        Only default-shaped requests are eligible (no round budget, no
        scheduler params — a corpus stores exactly the default run), so
        a hit is byte-identical to the computed response by
        construction: corpora only admit found-and-valid frames, and
        registry schedulers are deterministic in (graph, scheduler, k,
        source, seed).  Pinned by tests and ``bench_corpus``.
        """
        if self._corpus is None or request.rounds is not None or request.params:
            return None
        fid = self._corpus.lookup(
            request.graph,
            request.scheduler,
            request.source,
            k=request.k,
            seed=request.seed,
        )
        if fid is None:
            self._corpus_misses += 1
            return None
        self._corpus_hits += 1
        frame = self._corpus.frame_at(fid)
        from repro.io import frame_to_dict

        response = protocol.ScheduleResponseV1(
            scheduler=request.scheduler,
            graph=request.graph,
            source=request.source,
            k=request.k,
            found=True,
            rounds=frame.n_rounds,
            valid=True,
            n_calls=frame.n_calls,
            schedule=frame_to_dict(frame),
        )
        return 200, protocol.encode_canonical(response.to_wire())

    async def _do_schedule(self, body: bytes) -> tuple[int, bytes]:
        request = protocol.decode_schedule_request(_parse_json(body))
        hit = self._corpus_response(request)
        if hit is not None:
            return hit
        graph = self._graph_for(request.graph)

        from repro import api

        result = await self._offload(
            functools.partial(
                api.schedule,
                graph,
                request.scheduler,
                source=request.source,
                k=request.k,
                rounds=request.rounds,
                seed=request.seed,
                params=dict(request.params),
            )
        )
        payload = None
        if result.frame is not None:
            from repro.io import frame_to_dict

            payload = frame_to_dict(result.frame)
        response = protocol.ScheduleResponseV1(
            scheduler=result.scheduler,
            graph=request.graph,
            source=result.source,
            k=result.k,
            found=result.found,
            rounds=result.rounds,
            valid=result.valid,
            n_calls=result.frame.n_calls if result.frame is not None else None,
            schedule=payload,
        )
        return 200, protocol.encode_canonical(response.to_wire())

    async def _do_validate(self, body: bytes) -> tuple[int, bytes]:
        request = protocol.decode_validate_request(_parse_json(body))
        from repro.api import ENGINES
        from repro.io import frame_from_dict

        if request.engine not in ENGINES:
            raise InvalidParameterError(
                f"unknown engine {request.engine!r}; known: {', '.join(ENGINES)}"
            )
        graph = self._graph_for(request.graph)
        frames = [frame_from_dict(dict(p)) for p in request.schedules]
        if request.engine in ("auto", "batch"):
            key = BatchKey(
                graph_spec=request.graph,
                k=request.k,
                require_minimum_time=request.require_minimum_time,
                vertex_disjoint=request.vertex_disjoint,
            )
            reports, coalesced = await self._coalescer.validate(key, frames)
        else:
            # Explicit reference/fast engine: the caller asked for a
            # specific implementation, so no cross-request stacking.
            from repro import api

            result = await self._offload(
                functools.partial(
                    api.validate,
                    graph,
                    frames,
                    request.k,
                    engine=request.engine,
                    require_minimum_time=request.require_minimum_time,
                    vertex_disjoint=request.vertex_disjoint,
                )
            )
            reports = result if isinstance(result, list) else [result]
            coalesced = False
        response = protocol.ValidateResponseV1(
            graph=request.graph,
            k=request.k,
            coalesced=coalesced,
            reports=tuple(
                protocol.ReportV1(
                    ok=r.ok,
                    rounds=r.rounds,
                    max_call_length=r.max_call_length,
                    errors=tuple(r.errors),
                )
                for r in reports
            ),
        )
        return 200, protocol.encode_canonical(response.to_wire())

    async def _do_certificate(self, body: bytes) -> tuple[int, bytes]:
        request = protocol.decode_certificate_request(_parse_json(body))
        sh = self._construction_for(request.construction)

        from repro import api

        payload = await self._offload(
            functools.partial(api.certificate, sh, request.sources)
        )
        return 200, protocol.encode_certificate_payload(payload)

    def _do_healthz(self) -> tuple[int, bytes]:
        return 200, protocol.encode_canonical(
            {"format": protocol.SERVICE_FORMAT, "status": "ok"}
        )

    def _do_stats(self) -> tuple[int, bytes]:
        from repro.engine.cache import cache_info
        from repro.engine.parallel import transport_stats

        payload = {
            "format": protocol.SERVICE_FORMAT,
            "endpoints": {
                name: stats.to_wire() for name, stats in self._stats.items()
            },
            "engine_cache": dict(cache_info()),
            "coalescer": {
                "passes": self._coalescer.passes,
                "requests": self._coalescer.requests,
                "schedules": self._coalescer.schedules,
                "coalesced_passes": self._coalescer.coalesced_passes,
            },
            "graphs_cached": len(self._graphs),
            "constructions_cached": len(self._constructions),
            "corpus": {
                "enabled": self._corpus is not None,
                "frames": (
                    self._corpus.n_frames if self._corpus is not None else 0
                ),
                "groups": (
                    len(self._corpus.groups) if self._corpus is not None else 0
                ),
                "hits": self._corpus_hits,
                "misses": self._corpus_misses,
            },
            "transport": transport_stats(),
            "connections": {
                "active": self._connections,
                "rejected": self._rejected,
                "max": self._max_connections,
                "max_keepalive": self._max_keepalive,
            },
        }
        return 200, protocol.encode_canonical(payload)

    # -- routing ------------------------------------------------------------

    async def dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, bytes]:
        """Route one request; always returns a complete response pair."""
        route = _ROUTES.get(path)
        if route is None:
            return _error_response(
                protocol.ErrorV1("not-found", f"unknown path {path!r}")
            )
        endpoint, expected_method = route
        stats = self._stats[endpoint]
        if method != expected_method:
            stats.errors += 1
            return _error_response(
                protocol.ErrorV1(
                    "method-not-allowed", f"{path} takes {expected_method}"
                )
            )
        self._inflight += 1
        self._idle.clear()
        started = time.perf_counter()
        try:
            if endpoint == "healthz":
                return self._do_healthz()
            if endpoint == "stats":
                return self._do_stats()
            handler: Callable[[bytes], Awaitable[tuple[int, bytes]]] = {
                "schedule": self._do_schedule,
                "validate": self._do_validate,
                "certificate": self._do_certificate,
            }[endpoint]
            return await handler(body)
        except (ReproError, KeyError, OSError) as exc:
            # domain/taxonomy errors, registry KeyErrors, IO faults
            stats.errors += 1
            message = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
            return _error_response(
                protocol.ErrorV1(error_code(exc), str(message))
            )
        except ValueError as exc:
            stats.errors += 1
            return _error_response(protocol.ErrorV1(error_code(exc), str(exc)))
        finally:
            stats.count += 1
            stats.seconds += time.perf_counter() - started
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    # -- connection handling / lifecycle ------------------------------------

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One keep-alive HTTP connection, request by request.

        Backpressure happens here, not in dispatch: a connection beyond
        ``--max-connections`` is answered ``503`` with ``Retry-After``
        and closed before any request is read, and an accepted
        connection is closed (``Connection: close``) after
        ``--max-keepalive`` requests so one chatty client cannot pin a
        slot forever.
        """
        if (
            self._max_connections is not None
            and self._connections >= self._max_connections
        ):
            self._rejected += 1
            error = protocol.ErrorV1(
                "overloaded",
                f"connection limit {self._max_connections} reached; retry",
            )
            status, payload = _error_response(error)
            try:
                writer.write(
                    render_response(
                        status,
                        payload,
                        keep_alive=False,
                        extra_headers={"Retry-After": "1"},
                    )
                )
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            return
        self._connections += 1
        served = 0
        try:
            while not self._closing:
                try:
                    request = await read_request(reader)
                except InvalidParameterError as exc:
                    error = protocol.ErrorV1("bad-request", str(exc))
                    status, payload = _error_response(error)
                    writer.write(
                        render_response(status, payload, keep_alive=False)
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                status, payload = await self.dispatch(
                    request.method, request.path, request.body
                )
                served += 1
                keep = (
                    request.keep_alive
                    and not self._closing
                    and served < self._max_keepalive
                )
                writer.write(render_response(status, payload, keep_alive=keep))
                await writer.drain()
                if not keep:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            self._connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def drain(self) -> None:
        """Wait until every in-flight request has been answered."""
        self._closing = True
        await self._idle.wait()

    def close(self) -> None:
        """Release the pool, the corpus, and the shm attach cache."""
        self._executor.shutdown(wait=True)
        if self._corpus is not None:
            self._corpus.close()
            self._corpus = None
        from repro.engine.shm import detach_all

        detach_all()


def _parse_json(body: bytes) -> Any:
    try:
        return json.loads(body)
    except json.JSONDecodeError as exc:
        raise InvalidParameterError(f"request body is not valid JSON: {exc}") from None


def _error_response(error: protocol.ErrorV1) -> tuple[int, bytes]:
    return error.status, protocol.encode_canonical(error.to_wire())


_ROUTES: dict[str, tuple[str, str]] = {
    "/v1/schedule": ("schedule", "POST"),
    "/v1/validate": ("validate", "POST"),
    "/v1/certificate": ("certificate", "POST"),
    "/v1/healthz": ("healthz", "GET"),
    "/v1/stats": ("stats", "GET"),
}


async def _amain(
    host: str,
    port: int,
    workers: int,
    corpus: str | None,
    max_connections: int | None,
    max_keepalive: int,
) -> int:
    service = ReproService(
        workers=workers,
        corpus=corpus,
        max_connections=max_connections,
        max_keepalive=max_keepalive,
    )
    server = await asyncio.start_server(service.handle_connection, host, port)
    bound = server.sockets[0].getsockname()
    print(f"repro serve listening on http://{bound[0]}:{bound[1]}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, stop.set)
    await stop.wait()
    print("repro serve: draining", flush=True)
    server.close()
    await server.wait_closed()
    await service.drain()
    service.close()
    print("repro serve: shutdown complete", flush=True)
    return 0


def serve_forever(
    *,
    host: str = "127.0.0.1",
    port: int = 8571,
    workers: int = 2,
    corpus: str | None = None,
    max_connections: int | None = None,
    max_keepalive: int = 1000,
) -> int:
    """Run the daemon until SIGINT/SIGTERM; returns the exit code (0)."""
    return asyncio.run(
        _amain(host, port, workers, corpus, max_connections, max_keepalive)
    )
