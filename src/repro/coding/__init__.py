"""Coding-theory substrate: GF(2) linear algebra and Hamming codes.

The paper's Lemma 2 builds its optimal Condition-A labeling from Hamming
codes (ref. [28]): for ``m = 2^p − 1`` the syndrome map of the ``[m, m−p]``
Hamming code assigns ``m + 1`` labels to ``V(Q_m)`` such that every closed
neighbourhood contains each label exactly once — because the Hamming code
is a *perfect* 1-error-correcting code, i.e. radius-1 balls around
codewords tile the space.  This package implements that machinery from
scratch.
"""

from repro.coding.gf2 import (
    gf2_matvec,
    gf2_nullspace,
    gf2_rank,
    gf2_rref,
)
from repro.coding.hamming import (
    HammingCode,
    hamming_parity_check_matrix,
    hamming_syndrome,
    is_perfect_code,
    syndrome_classes,
)

__all__ = [
    "gf2_matvec",
    "gf2_rank",
    "gf2_rref",
    "gf2_nullspace",
    "HammingCode",
    "hamming_parity_check_matrix",
    "hamming_syndrome",
    "syndrome_classes",
    "is_perfect_code",
]
