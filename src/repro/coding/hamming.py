"""Binary Hamming codes ``[2^p − 1, 2^p − 1 − p, 3]`` and their syndromes.

Why this lives here: the paper's optimal Condition-A labeling of ``Q_m``
for ``m = 2^p − 1`` (Lemma 2, citing Roman's *Coding and Information
Theory*) is exactly the *syndrome map* of the Hamming code of length m.

The parity-check matrix ``H`` is the ``p × m`` matrix whose j-th column is
the binary expansion of ``j`` (columns indexed 1..m).  For a vertex
``u ∈ {0,1}^m`` the syndrome ``s(u) = H·u ∈ GF(2)^p`` takes ``2^p = m + 1``
values; flipping bit j changes the syndrome by column j, and since the
columns are exactly the ``m`` distinct non-zero vectors, the closed
neighbourhood ``{u} ∪ {⊕_j u}`` realizes **every** syndrome exactly once.
That is precisely Condition A with ``m + 1`` labels — and it is optimal
because ``λ_m ≤ m + 1`` (each vertex has only m neighbours).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coding.gf2 import gf2_matvec, gf2_nullspace, gf2_rank
from repro.types import InvalidParameterError
from repro.util.bits import int_to_bits, popcount

__all__ = [
    "hamming_parity_check_matrix",
    "hamming_syndrome",
    "hamming_syndrome_table",
    "syndrome_classes",
    "is_perfect_code",
    "HammingCode",
]


def hamming_parity_check_matrix(p: int) -> np.ndarray:
    """The ``p × (2^p − 1)`` parity check matrix with column j = binary(j).

    Row ``r`` holds bit ``r`` (LSB first) of each column index, so
    ``H[r, j-1] = (j >> r) & 1`` for columns ``j = 1 .. 2^p − 1``.
    """
    if p < 1:
        raise InvalidParameterError(f"need p >= 1, got {p}")
    m = (1 << p) - 1
    cols = np.arange(1, m + 1, dtype=np.int64)
    rows = np.arange(p, dtype=np.int64).reshape(p, 1)
    return ((cols >> rows) & 1).astype(np.uint8)


def hamming_syndrome(u: int, p: int) -> int:
    """Syndrome of the word ``u`` (length ``m = 2^p − 1``) as an int in
    ``[0, 2^p)``.

    Computed directly from the column structure: syndrome =
    XOR of the (1-indexed) positions of the set bits of ``u``.
    This identity (column j of H *is* binary(j)) is what makes the
    labeling computable in O(popcount) per vertex.
    """
    if p < 1:
        raise InvalidParameterError(f"need p >= 1, got {p}")
    m = (1 << p) - 1
    if u < 0 or u >= (1 << m):
        raise InvalidParameterError(f"word {u} does not fit in m={m} bits")
    s = 0
    pos = 1
    while u:
        if u & 1:
            s ^= pos
        u >>= 1
        pos += 1
    return s


def hamming_syndrome_table(p: int) -> np.ndarray:
    """Vector of syndromes for all ``2^m`` words, ``m = 2^p − 1``.

    Built incrementally: ``syndrome(u)`` differs from
    ``syndrome(u with top bit cleared)`` by the top bit's position.
    O(2^m) time and memory; used to label whole subcube vertex sets at once.
    """
    m = (1 << p) - 1
    if m > 22:
        raise InvalidParameterError(f"syndrome table too large for m={m}")
    table = np.zeros(1 << m, dtype=np.int64)
    for j in range(1, m + 1):  # dimension j toggles syndrome by j
        size = 1 << (j - 1)
        table[size : 2 * size] = table[:size] ^ j
    return table


def syndrome_classes(p: int) -> list[list[int]]:
    """The ``m + 1`` syndrome classes (cosets of the Hamming code) of
    ``{0,1}^m``, ``m = 2^p − 1``, indexed by syndrome value."""
    table = hamming_syndrome_table(p)
    m = (1 << p) - 1
    classes: list[list[int]] = [[] for _ in range(m + 1)]
    for u, s in enumerate(table):
        classes[int(s)].append(u)
    return classes


def is_perfect_code(codewords: set[int], m: int) -> bool:
    """True iff radius-1 balls around ``codewords`` tile ``{0,1}^m``.

    Checks the defining property of a perfect 1-error-correcting code used
    in the Condition-A argument.
    """
    covered: set[int] = set()
    for c in codewords:
        ball = {c} | {c ^ (1 << j) for j in range(m)}
        if covered & ball:
            return False
        covered |= ball
    return len(covered) == (1 << m)


@dataclass(frozen=True)
class HammingCode:
    """The binary Hamming code of length ``m = 2^p − 1``.

    Provides codeword enumeration (via the nullspace of H), syndrome
    computation/decoding, and the perfect-tiling property check.
    """

    p: int

    def __post_init__(self) -> None:
        if self.p < 1:
            raise InvalidParameterError(f"need p >= 1, got {self.p}")

    @property
    def length(self) -> int:
        return (1 << self.p) - 1

    @property
    def dimension(self) -> int:
        return self.length - self.p

    def parity_check_matrix(self) -> np.ndarray:
        return hamming_parity_check_matrix(self.p)

    def syndrome(self, u: int) -> int:
        return hamming_syndrome(u, self.p)

    def syndrome_via_matrix(self, u: int) -> int:
        """Syndrome computed by explicit H·u (cross-check path for tests)."""
        H = self.parity_check_matrix()
        vec = int_to_bits(u, self.length)
        s = gf2_matvec(H, vec)
        return int(sum(int(b) << r for r, b in enumerate(s)))

    def is_codeword(self, u: int) -> bool:
        return self.syndrome(u) == 0

    def codewords(self) -> set[int]:
        """All ``2^{m−p}`` codewords (nullspace span).  Exponential in the
        dimension; intended for p ≤ 3 in tests (p=4 is 2^11 = 2048 words,
        still fine)."""
        if self.dimension > 16:
            raise InvalidParameterError("codeword enumeration too large")
        basis = gf2_nullspace(self.parity_check_matrix())
        assert gf2_rank(self.parity_check_matrix()) == self.p
        words = {0}
        for row in basis:
            as_int = int(sum(int(b) << j for j, b in enumerate(row)))
            words |= {w ^ as_int for w in words}
        return words

    def decode(self, u: int) -> int:
        """Nearest-codeword decode: flip the bit named by the syndrome."""
        s = self.syndrome(u)
        if s == 0:
            return u
        return u ^ (1 << (s - 1))

    def minimum_distance_at_most(self, bound: int) -> bool:
        """Cheap check that some codeword has weight ≤ bound (true for 3)."""
        return any(0 < popcount(w) <= bound for w in self.codewords() if w != 0)
