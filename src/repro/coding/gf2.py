"""Dense linear algebra over GF(2), represented as 0/1 uint8 NumPy arrays.

Small and self-contained: the Hamming-code machinery needs matrix-vector
products, row reduction, rank and nullspace over GF(2).  Matrices are
``(rows, cols)`` uint8 arrays with entries in {0, 1}; vectors are 1-D
uint8 arrays.  All operations return fresh arrays (inputs never mutated).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gf2_matvec",
    "gf2_matmul",
    "gf2_rref",
    "gf2_rank",
    "gf2_nullspace",
    "gf2_solve",
]


def _as_gf2(a: np.ndarray) -> np.ndarray:
    out = np.asarray(a, dtype=np.uint8) & 1
    return out


def gf2_matvec(mat: np.ndarray, vec: np.ndarray) -> np.ndarray:
    """``mat @ vec`` over GF(2)."""
    mat = _as_gf2(mat)
    vec = _as_gf2(vec)
    if mat.shape[1] != vec.shape[0]:
        raise ValueError(f"shape mismatch: {mat.shape} @ {vec.shape}")
    return (mat.astype(np.int64) @ vec.astype(np.int64) % 2).astype(np.uint8)


def gf2_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b`` over GF(2)."""
    a = _as_gf2(a)
    b = _as_gf2(b)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    return (a.astype(np.int64) @ b.astype(np.int64) % 2).astype(np.uint8)


def gf2_rref(mat: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Reduced row-echelon form over GF(2).

    Returns ``(rref_matrix, pivot_columns)``.
    """
    m = _as_gf2(mat).copy()
    rows, cols = m.shape
    pivots: list[int] = []
    r = 0
    for c in range(cols):
        if r >= rows:
            break
        # find a pivot row at or below r
        pivot_rows = np.nonzero(m[r:, c])[0]
        if pivot_rows.size == 0:
            continue
        p = r + int(pivot_rows[0])
        if p != r:
            m[[r, p]] = m[[p, r]]
        # eliminate the column everywhere else
        mask = m[:, c].astype(bool)
        mask[r] = False
        m[mask] ^= m[r]
        pivots.append(c)
        r += 1
    return m, pivots


def gf2_rank(mat: np.ndarray) -> int:
    """Rank over GF(2)."""
    _, pivots = gf2_rref(mat)
    return len(pivots)


def gf2_nullspace(mat: np.ndarray) -> np.ndarray:
    """A basis of the right nullspace of ``mat`` over GF(2).

    Returns a ``(dim, cols)`` uint8 array whose rows are basis vectors
    (possibly zero rows count = 0, returned shape ``(0, cols)``).
    """
    mat = _as_gf2(mat)
    rref, pivots = gf2_rref(mat)
    rows, cols = rref.shape
    free_cols = [c for c in range(cols) if c not in pivots]
    basis = np.zeros((len(free_cols), cols), dtype=np.uint8)
    for k, fc in enumerate(free_cols):
        basis[k, fc] = 1
        for r, pc in enumerate(pivots):
            if rref[r, fc]:
                basis[k, pc] = 1
    return basis


def gf2_solve(mat: np.ndarray, rhs: np.ndarray) -> np.ndarray | None:
    """One solution ``x`` of ``mat @ x = rhs`` over GF(2), or None."""
    mat = _as_gf2(mat)
    rhs = _as_gf2(rhs)
    rows, cols = mat.shape
    aug = np.concatenate([mat, rhs.reshape(rows, 1)], axis=1)
    rref, pivots = gf2_rref(aug)
    # inconsistent iff a pivot lands in the rhs column
    if cols in pivots:
        return None
    x = np.zeros(cols, dtype=np.uint8)
    for r, pc in enumerate(pivots):
        x[pc] = rref[r, cols]
    return x
